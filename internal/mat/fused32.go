package mat

import (
	"fmt"
	"sync"
)

// Fused online-ABFT float32 GEMM — the mixed-precision sibling of fused.go.
//
// MulAddIntoFused32 computes the same c += a·b as MulAddInto32 (bit-identical
// float32 result, same determinism contract) while deriving everything the
// adaptive-threshold verifier needs in float64:
//
//   - operand checksums (eᵀA, B·e) and operand magnitude statistics
//     (Moments) ride the packing copy;
//   - row/column sums AND absolute-value sums of the output are folded at
//     the final k-block's writeback, while each value is still L1-hot.
//
// The absolute sums are what make the V-ABFT threshold per-line adaptive: a
// row's detection bound scales with the magnitude that actually flowed
// through it, not with a global worst case.
//
// Only c's float32 bits are parallelism-invariant. The float64 sums are
// reduced in deterministic ascending-band order (reproducible for a fixed
// worker count) but their rounding association varies with the band split —
// consumers compare them against encoded checksums with a tolerance, never
// for bit equality.

// FusedSums32 receives the float64 checksums and statistics the fused
// float32 kernel accumulates. All slices are required, are overwritten, and
// must have the exact lengths noted.
type FusedSums32 struct {
	RowSums    []float64 // len a.Rows: Σ_j of the final c[i][j]
	ColSums    []float64 // len c.Cols: Σ_i of the final c[i][j]
	AbsRowSums []float64 // len a.Rows: Σ_j |final c[i][j]|
	AbsColSums []float64 // len c.Cols: Σ_i |final c[i][j]|
	ASums      []float64 // len a.Cols: Σ_i a[i][k] (eᵀA)
	BSums      []float64 // len a.Cols: Σ_j b[k][j] (B·e)
	AMoments   Moments   // magnitude statistics of a's packed elements
	BMoments   Moments   // magnitude statistics of b's packed elements
}

// MulAddIntoFused32 computes c += a×b in float32 with float64 checksum and
// statistics accumulation fused into the packing and writeback passes. c's
// result is bit-identical to MulAddInto32 at any blocking or parallelism.
func MulAddIntoFused32(c, a, b *Matrix32, fs *FusedSums32) {
	checkShape32(c, a, b, "MulAddIntoFused32")
	m, kdim, n := a.Rows, a.Cols, c.Cols
	if fs == nil {
		MulAddInto32(c, a, b)
		return
	}
	checkSumLen32(fs.RowSums, m, "RowSums")
	checkSumLen32(fs.ColSums, n, "ColSums")
	checkSumLen32(fs.AbsRowSums, m, "AbsRowSums")
	checkSumLen32(fs.AbsColSums, n, "AbsColSums")
	checkSumLen32(fs.ASums, kdim, "ASums")
	checkSumLen32(fs.BSums, kdim, "BSums")
	clear(fs.RowSums)
	clear(fs.ColSums)
	clear(fs.AbsRowSums)
	clear(fs.AbsColSums)
	clear(fs.ASums)
	clear(fs.BSums)
	fs.AMoments = Moments{}
	fs.BMoments = Moments{}
	if m == 0 || n == 0 || kdim == 0 {
		return
	}
	workers := workersFor(m, 2*m*n*kdim)
	if workers <= 1 {
		gemmSerial32(c, a, b, &fusedAcc32{
			rs: fs.RowSums, cs: fs.ColSums, ars: fs.AbsRowSums, acs: fs.AbsColSums,
			asum: fs.ASums, bsum: fs.BSums, amom: &fs.AMoments, bmom: &fs.BMoments,
		})
		return
	}

	// Parallel: each row band folds into disjoint RowSums/AbsRowSums rows
	// directly and into pooled per-band column/operand partials; bands are
	// reduced in ascending order so the sums depend only on (shape, workers).
	// BSums/BMoments cover all of b in every band, so only band 0 derives
	// them; AMoments is per-band (each band packs its own rows) and merged.
	bands := rowBands(m, workers)
	colParts := make([]*[]float64, len(bands)) // ColSums ++ AbsColSums
	aParts := make([]*[]float64, len(bands))   // ASums
	aMoms := make([]Moments, len(bands))
	var wg sync.WaitGroup
	for idx, bd := range bands {
		colParts[idx] = getZeroBuf(2 * n)
		aParts[idx] = getZeroBuf(kdim)
		wg.Add(1)
		go func(idx, lo, hi int) {
			defer wg.Done()
			part := *colParts[idx]
			fa := &fusedAcc32{
				rs: fs.RowSums[lo:hi], ars: fs.AbsRowSums[lo:hi],
				cs: part[:n], acs: part[n:],
				asum: *aParts[idx], amom: &aMoms[idx],
			}
			if idx == 0 {
				fa.bsum = fs.BSums
				fa.bmom = &fs.BMoments
			}
			gemmSerial32(c.View(lo, 0, hi-lo, n), a.View(lo, 0, hi-lo, kdim), b, fa)
		}(idx, bd.lo, bd.hi)
	}
	wg.Wait()
	for idx := range bands {
		part := *colParts[idx]
		for j := 0; j < n; j++ {
			fs.ColSums[j] += part[j]
			fs.AbsColSums[j] += part[n+j]
		}
		putBuf(colParts[idx])
		for k, v := range *aParts[idx] {
			fs.ASums[k] += v
		}
		putBuf(aParts[idx])
		fs.AMoments.Merge(aMoms[idx])
	}
}

func checkSumLen32(s []float64, want int, name string) {
	if len(s) != want {
		panic(fmt.Sprintf("mat: MulAddIntoFused32 %s length %d, want %d", name, len(s), want))
	}
}
