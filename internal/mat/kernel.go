package mat

import (
	"fmt"
	"sync"
)

// Packed GEMM micro-kernel layer.
//
// The classic fix for a stride-hopping triple loop: copy the A and B panels
// the inner loops will consume into contiguous, cache-sized buffers laid out
// exactly in kernel consumption order, then run an unrolled register
// micro-kernel over them (Goto & van de Geijn; the same substrate FT-BLAS
// and FT-GEMM build their fault-tolerant GEMMs on). Packing buffers are
// recycled through a sync.Pool so steady-state GEMM does no allocation.
//
// Determinism contract: every output element is accumulated in ascending-k
// order starting from its current value — the micro-kernel seeds its
// register accumulators from C — so the result is bit-identical to the
// scalar reference loop regardless of cache blocking, micro-tile shape, or
// row-band parallelism. Tests assert exact bit equality.

const (
	// mr×nr is the register micro-tile: 8 accumulators plus 6 operand
	// temporaries fit the 16-register amd64 FP file with room to spare.
	// (A 4×4 tile measures ~2× slower here: its 16 accumulators spill
	// every iteration.)
	mr = 2
	nr = 4

	// kcBlock sizes the packed panels' shared k extent: an mr×kcBlock
	// A micro-panel (8KB) plus an nr×kcBlock B micro-panel stay L1-warm.
	kcBlock = 256
	// mcBlock rows of packed A (mcBlock×kcBlock = 512KB ceiling) target L2.
	mcBlock = 256
	// ncBlock columns of packed B bound the B panel at kcBlock×ncBlock.
	ncBlock = 512

	// packMinFlops is the floor below which packing costs more than the
	// plain blocked loop saves.
	packMinFlops = 1 << 15
)

// bufPool recycles packing buffers across GEMM calls and goroutines.
var bufPool = sync.Pool{New: func() any { return new([]float64) }}

func getBuf(n int) *[]float64 {
	p := bufPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putBuf(p *[]float64) { bufPool.Put(p) }

// packA copies rows [i0, i0+m) × cols [k0, k0+kb) of a into buf as mr-row
// micro-panels in k-major order (the kernel reads mr values per k step),
// scaled by alpha (±1, so scaling is exact) and zero-padded to mr rows.
func packA(buf []float64, a *Matrix, i0, m, k0, kb int, alpha float64) {
	idx := 0
	for r0 := 0; r0 < m; r0 += mr {
		rows := min(mr, m-r0)
		base := (i0+r0)*a.Stride + k0
		for p := 0; p < kb; p++ {
			for r := 0; r < rows; r++ {
				buf[idx+r] = alpha * a.Data[base+r*a.Stride+p]
			}
			for r := rows; r < mr; r++ {
				buf[idx+r] = 0
			}
			idx += mr
		}
	}
}

// packB copies rows [k0, k0+kb) × cols [j0, j0+nw) of b (of bᵀ when trans
// is set, reading element (k, j) from b[j][k]) into buf as nr-column
// micro-panels in k-major order, zero-padded to nr columns.
func packB(buf []float64, b *Matrix, k0, kb, j0, nw int, trans bool) {
	idx := 0
	for c0 := 0; c0 < nw; c0 += nr {
		cols := min(nr, nw-c0)
		for p := 0; p < kb; p++ {
			if trans {
				base := (j0+c0)*b.Stride + k0 + p
				for c := 0; c < cols; c++ {
					buf[idx+c] = b.Data[base+c*b.Stride]
				}
			} else {
				src := b.Data[(k0+p)*b.Stride+j0+c0:]
				for c := 0; c < cols; c++ {
					buf[idx+c] = src[c]
				}
			}
			for c := cols; c < nr; c++ {
				buf[idx+c] = 0
			}
			idx += nr
		}
	}
}

// kern2x4 runs the full-tile micro-kernel: a 2×4 block of C gains the
// kb-step product of an A micro-panel and a B micro-panel, k unrolled by
// two. Accumulators are seeded from C and updated in ascending-k order (see
// the determinism contract above).
func kern2x4(kb int, ap, bp []float64, cd []float64, ldc int) {
	c0 := cd[0*ldc : 0*ldc+4]
	c1 := cd[1*ldc : 1*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	ap = ap[:mr*kb]
	bp = bp[:nr*kb]
	pa, pb := 0, 0
	for ; pa+4 <= len(ap); pa, pb = pa+4, pb+8 {
		a := ap[pa : pa+4]
		b := bp[pb : pb+8]
		a0, a1 := a[0], a[1]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[2], a[3]
		b0, b1, b2, b3 = b[4], b[5], b[6], b[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	for ; pa+2 <= len(ap); pa, pb = pa+2, pb+4 {
		a0, a1 := ap[pa], ap[pa+1]
		b := bp[pb : pb+4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
}

// kernEdge handles partial tiles at the right/bottom fringe with the same
// per-element ascending-k accumulation as the full-tile kernel.
func kernEdge(kb, rows, cols int, ap, bp, cd []float64, ldc int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := cd[r*ldc+c]
			for p := 0; p < kb; p++ {
				s += ap[p*mr+r] * bp[p*nr+c]
			}
			cd[r*ldc+c] = s
		}
	}
}

// gemmPacked computes c += alpha·a·op(b) (alpha ∈ {+1, −1}; op(b) = bᵀ when
// transB) over all of c with the packed micro-kernel. Loop order is
// jc→pc→ic (pack B per k-panel, pack A per row block), so k ascends for
// every output element no matter how the blocks fall.
func gemmPacked(c, a, b *Matrix, alpha float64, transB bool) {
	m, kdim, n := a.Rows, a.Cols, c.Cols
	bbuf := getBuf(kcBlock * ncBlock)
	abuf := getBuf(mcBlock * kcBlock)
	defer putBuf(bbuf)
	defer putBuf(abuf)
	for j0 := 0; j0 < n; j0 += ncBlock {
		nw := min(ncBlock, n-j0)
		for k0 := 0; k0 < kdim; k0 += kcBlock {
			kb := min(kcBlock, kdim-k0)
			packB(*bbuf, b, k0, kb, j0, nw, transB)
			for i0 := 0; i0 < m; i0 += mcBlock {
				mb := min(mcBlock, m-i0)
				packA(*abuf, a, i0, mb, k0, kb, alpha)
				for jr := 0; jr < nw; jr += nr {
					cols := min(nr, nw-jr)
					bp := (*bbuf)[(jr/nr)*kb*nr:]
					for ir := 0; ir < mb; ir += mr {
						rows := min(mr, mb-ir)
						ap := (*abuf)[(ir/mr)*kb*mr:]
						cd := c.Data[(i0+ir)*c.Stride+j0+jr:]
						if rows == mr && cols == nr {
							kern2x4(kb, ap, bp, cd, c.Stride)
						} else {
							kernEdge(kb, rows, cols, ap, bp, cd, c.Stride)
						}
					}
				}
			}
		}
	}
}

// gemmSimple is the unpacked blocked loop for problems too small to
// amortize panel copies. Same ascending-k-per-element order, same result
// bits.
func gemmSimple(c, a, b *Matrix, alpha float64, transB bool) {
	n, kdim, m := a.Rows, a.Cols, c.Cols
	for ii := 0; ii < n; ii += gemmBlock {
		iMax := min(ii+gemmBlock, n)
		for kk := 0; kk < kdim; kk += gemmBlock {
			kMax := min(kk+gemmBlock, kdim)
			for jj := 0; jj < m; jj += gemmBlock {
				jMax := min(jj+gemmBlock, m)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+m]
					arow := a.Data[i*a.Stride : i*a.Stride+kdim]
					if transB {
						for j := jj; j < jMax; j++ {
							s := crow[j]
							brow := b.Data[j*b.Stride : j*b.Stride+kdim]
							for p := kk; p < kMax; p++ {
								s += alpha * arow[p] * brow[p]
							}
							crow[j] = s
						}
						continue
					}
					for p := kk; p < kMax; p++ {
						av := alpha * arow[p]
						brow := b.Data[p*b.Stride : p*b.Stride+m]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// gemmSerial dispatches one row band to the packed or simple path by size.
// Both produce identical bits, so the choice is invisible to callers.
func gemmSerial(c, a, b *Matrix, alpha float64, transB bool) {
	if 2*a.Rows*a.Cols*c.Cols < packMinFlops {
		gemmSimple(c, a, b, alpha, transB)
		return
	}
	gemmPacked(c, a, b, alpha, transB)
}

// mulAdd is the shared entry: c += alpha·a·op(b), parallel over row bands
// when the problem clears the threshold and the budget allows.
func mulAdd(c, a, b *Matrix, alpha float64, transB bool) {
	m, kdim, n := a.Rows, a.Cols, c.Cols
	if m == 0 || n == 0 || kdim == 0 {
		return
	}
	workers := workersFor(m, 2*m*n*kdim)
	if workers <= 1 {
		gemmSerial(c, a, b, alpha, transB)
		return
	}
	runBands(rowBands(m, workers), func(lo, hi int) {
		gemmSerial(c.View(lo, 0, hi-lo, n), a.View(lo, 0, hi-lo, kdim), b, alpha, transB)
	})
}

// SyrkLowerSub computes c -= l·lᵀ on the lower triangle of c (including the
// diagonal), the trailing update of the blocked Cholesky. Sub-diagonal
// blocks go through the packed GEMM kernel; diagonal blocks use a scalar
// triangle loop. Both accumulate each element in ascending-k order from its
// stored value, so the result is bit-identical to the scalar reference at
// any block size or parallelism.
func SyrkLowerSub(c, l *Matrix) {
	n, k := c.Rows, l.Cols
	if c.Cols != n || l.Rows != n {
		panic(fmt.Sprintf("mat: SyrkLowerSub shape mismatch: c %dx%d, l %dx%d",
			c.Rows, c.Cols, l.Rows, l.Cols))
	}
	if n == 0 || k == 0 {
		return
	}
	workers := workersFor(n, n*(n+1)*k)
	if workers <= 1 {
		syrkRows(c, l, 0, n)
		return
	}
	runBands(triBands(n, workers), func(lo, hi int) {
		syrkRows(c, l, lo, hi)
	})
}

// syrkBlock is the SYRK column-block width. It is a fixed property of the
// algorithm (not of the band split) so that which path computes an element
// never depends on the worker count.
const syrkBlock = 64

// syrkRows updates rows [r0, r1) of the lower triangle of c.
func syrkRows(c, l *Matrix, r0, r1 int) {
	k := l.Cols
	for j0 := 0; j0 < r1; j0 += syrkBlock {
		jw := min(syrkBlock, c.Cols-j0)
		// Diagonal-block rows: the ragged triangle, scalar dot products.
		for i := max(r0, j0); i < min(r1, j0+jw); i++ {
			li := l.Data[i*l.Stride : i*l.Stride+k]
			crow := c.Data[i*c.Stride : i*c.Stride+i+1]
			for j := j0; j <= i; j++ {
				lj := l.Data[j*l.Stride : j*l.Stride+k]
				s := crow[j]
				for p, v := range li {
					s -= v * lj[p]
				}
				crow[j] = s
			}
		}
		// Sub-diagonal rectangle: a packed GEMM against lᵀ.
		if lo := max(r0, j0+jw); lo < r1 {
			gemmSerial(c.View(lo, j0, r1-lo, jw), l.View(lo, 0, r1-lo, k),
				l.View(j0, 0, jw, k), -1, true)
		}
	}
}

// SolveXLT solves X·Lᵀ = B in place (B overwritten with X) for lower
// triangular l — the panel solve of the blocked Cholesky. Rows are
// independent forward substitutions, so row bands parallelize with
// bit-identical results at any worker count.
func SolveXLT(b, l *Matrix) {
	n := l.Rows
	if l.Cols != n || b.Cols != n {
		panic(fmt.Sprintf("mat: SolveXLT shape mismatch: b %dx%d, l %dx%d",
			b.Rows, b.Cols, l.Rows, l.Cols))
	}
	workers := workersFor(b.Rows, b.Rows*n*n)
	solve := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := b.Data[i*b.Stride : i*b.Stride+n]
			for j := 0; j < n; j++ {
				s := row[j]
				lrow := l.Data[j*l.Stride : j*l.Stride+j]
				for p, lv := range lrow {
					s -= lv * row[p]
				}
				row[j] = s / l.At(j, j)
			}
		}
	}
	if workers <= 1 {
		solve(0, b.Rows)
		return
	}
	runBands(rowBands(b.Rows, workers), solve)
}
