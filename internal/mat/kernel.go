package mat

import (
	"fmt"
	"math/bits"
	"sync"
)

// Packed GEMM micro-kernel layer.
//
// The classic fix for a stride-hopping triple loop: copy the A and B panels
// the inner loops will consume into contiguous, cache-sized buffers laid out
// exactly in kernel consumption order, then run an unrolled register
// micro-kernel over them (Goto & van de Geijn; the same substrate FT-BLAS
// and FT-GEMM build their fault-tolerant GEMMs on). Packing buffers are
// recycled through a sync.Pool so steady-state GEMM does no allocation.
//
// Determinism contract: every output element is accumulated in ascending-k
// order starting from its current value — the micro-kernel seeds its
// register accumulators from C — so the result is bit-identical to the
// scalar reference loop regardless of cache blocking, micro-tile shape, or
// row-band parallelism. Tests assert exact bit equality.

const (
	// mr×nr is the default register micro-tile: 8 accumulators plus 6
	// operand temporaries fit the 16-register amd64 FP file with room to
	// spare. A 4×4 tile (kern4x4) is also available — its 16 accumulators
	// spill, which BenchmarkGEMMTile shows costs more than the halved B
	// traffic saves, so 2×4 stays the default for both plain and fused
	// paths.
	mr = 2
	nr = 4

	// tileAlign is the band-partition alignment: the least common multiple
	// of the supported micro-tile heights (2 and 4), so row bands keep full
	// micro-tiles intact at either setting.
	tileAlign = 4

	// kcBlock sizes the packed panels' shared k extent: an mr×kcBlock
	// A micro-panel (8KB) plus an nr×kcBlock B micro-panel stay L1-warm.
	kcBlock = 256
	// mcBlock rows of packed A (mcBlock×kcBlock = 512KB ceiling) target L2.
	mcBlock = 256
	// ncBlock columns of packed B bound the B panel at kcBlock×ncBlock.
	ncBlock = 512

	// packMinFlops is the floor below which packing costs more than the
	// plain blocked loop saves.
	packMinFlops = 1 << 15
)

// Packing and reduction buffers are recycled through size-classed pools:
// one sync.Pool per power-of-two capacity class. A single shared pool
// thrashes under mixed request sizes — a Get can return a buffer too small
// for this call (reallocate, dropping the pooled one) while large buffers
// sit idle in the pool — so steady state keeps allocating. With per-class
// pools every Get either hits a buffer guaranteed to fit or takes the one
// allocation that seeds the class.
const maxPoolClass = 26 // 2^26 float64 = 512MB; anything larger is not pooled

var bufPools [maxPoolClass + 1]sync.Pool

// getBuf returns a length-n buffer (contents unspecified) from the pool of
// the smallest power-of-two capacity class holding n.
func getBuf(n int) *[]float64 {
	if n < 1 {
		n = 1
	}
	class := bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
	if class > maxPoolClass {
		p := make([]float64, n)
		return &p
	}
	if p, ok := bufPools[class].Get().(*[]float64); ok {
		*p = (*p)[:n]
		return p
	}
	p := make([]float64, n, 1<<class)
	return &p
}

// putBuf returns a buffer to its capacity class. Buffers always leave getBuf
// with an exact power-of-two capacity, so the class is recoverable from
// cap alone; anything else (or oversized) is dropped for the GC.
func putBuf(p *[]float64) {
	c := cap(*p)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class > maxPoolClass {
		return
	}
	*p = (*p)[:c]
	bufPools[class].Put(p)
}

// getZeroBuf returns a zeroed length-n pooled buffer (for sum accumulators).
func getZeroBuf(n int) *[]float64 {
	p := getBuf(n)
	clear(*p)
	return p
}

// packA copies rows [i0, i0+m) × cols [k0, k0+kb) of a into buf as tm-row
// micro-panels in k-major order (the kernel reads tm values per k step),
// scaled by alpha (±1, so scaling is exact) and zero-padded to tm rows.
//
// When asum is non-nil (length kb), the copy also accumulates the panel's
// column checksums — asum[p] += Σ_rows α·a[i0+r][k0+p], i.e. the eᵀA slice
// the online-ABFT path compares against the encoded checksum row — so the
// operand checksum costs no traversal beyond the packing pass itself.
func packA(buf []float64, a *Matrix, i0, m, k0, kb int, alpha float64, tm int, asum []float64) {
	idx := 0
	for r0 := 0; r0 < m; r0 += tm {
		rows := min(tm, m-r0)
		base := (i0+r0)*a.Stride + k0
		for p := 0; p < kb; p++ {
			s := 0.0
			for r := 0; r < rows; r++ {
				v := alpha * a.Data[base+r*a.Stride+p]
				buf[idx+r] = v
				s += v
			}
			for r := rows; r < tm; r++ {
				buf[idx+r] = 0
			}
			if asum != nil {
				asum[p] += s
			}
			idx += tm
		}
	}
}

// packB copies rows [k0, k0+kb) × cols [j0, j0+nw) of b (of bᵀ when trans
// is set, reading element (k, j) from b[j][k]) into buf as nr-column
// micro-panels in k-major order, zero-padded to nr columns.
//
// When bsum is non-nil (length kb), the copy also accumulates the panel's
// row checksums — bsum[p] += Σ_cols b[k0+p][j0+c], i.e. the B·e slice the
// online-ABFT path compares against the encoded checksum column.
func packB(buf []float64, b *Matrix, k0, kb, j0, nw int, trans bool, bsum []float64) {
	idx := 0
	for c0 := 0; c0 < nw; c0 += nr {
		cols := min(nr, nw-c0)
		for p := 0; p < kb; p++ {
			s := 0.0
			if trans {
				base := (j0+c0)*b.Stride + k0 + p
				for c := 0; c < cols; c++ {
					v := b.Data[base+c*b.Stride]
					buf[idx+c] = v
					s += v
				}
			} else {
				src := b.Data[(k0+p)*b.Stride+j0+c0:]
				for c := 0; c < cols; c++ {
					v := src[c]
					buf[idx+c] = v
					s += v
				}
			}
			for c := cols; c < nr; c++ {
				buf[idx+c] = 0
			}
			if bsum != nil {
				bsum[p] += s
			}
			idx += nr
		}
	}
}

// kern2x4 runs the full-tile micro-kernel: a 2×4 block of C gains the
// kb-step product of an A micro-panel and a B micro-panel, k unrolled by
// four. Accumulators are seeded from C and updated in ascending-k order (see
// the determinism contract above).
func kern2x4(kb int, ap, bp []float64, cd []float64, ldc int) {
	c0 := cd[0*ldc : 0*ldc+4]
	c1 := cd[1*ldc : 1*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	ap = ap[:mr*kb]
	bp = bp[:nr*kb]
	pa, pb := 0, 0
	for ; pa+8 <= len(ap); pa, pb = pa+8, pb+16 {
		a := ap[pa : pa+8]
		b := bp[pb : pb+16]
		a0, a1 := a[0], a[1]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[2], a[3]
		b0, b1, b2, b3 = b[4], b[5], b[6], b[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[4], a[5]
		b0, b1, b2, b3 = b[8], b[9], b[10], b[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[6], a[7]
		b0, b1, b2, b3 = b[12], b[13], b[14], b[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	for ; pa+2 <= len(ap); pa, pb = pa+2, pb+4 {
		a0, a1 := ap[pa], ap[pa+1]
		b := bp[pb : pb+4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
}

// kern4x4 is the widened 4×4 full-tile kernel (tileA4 packing): each k step
// loads 4 A values and 4 B values for 16 multiply-adds, halving B traffic
// per flop relative to 2×4. Its 16 accumulators exceed the 16-register
// amd64 FP file, so whether the better operand reuse beats the spill is a
// measured question — BenchmarkGEMMTile decides; dispatch stays behind the
// same determinism contract either way.
func kern4x4(kb int, ap, bp []float64, cd []float64, ldc int) {
	c0 := cd[0*ldc : 0*ldc+4]
	c1 := cd[1*ldc : 1*ldc+4]
	c2 := cd[2*ldc : 2*ldc+4]
	c3 := cd[3*ldc : 3*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	ap = ap[:4*kb]
	bp = bp[:4*kb]
	for p := 0; p+4 <= len(ap); p += 4 {
		a := ap[p : p+4]
		b := bp[p : p+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// kernEdge handles partial tiles at the right/bottom fringe with the same
// per-element ascending-k accumulation as the full-tile kernel. tm is the
// micro-panel row count ap was packed with.
func kernEdge(kb, rows, cols int, ap, bp, cd []float64, ldc, tm int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := cd[r*ldc+c]
			for p := 0; p < kb; p++ {
				s += ap[p*tm+r] * bp[p*nr+c]
			}
			cd[r*ldc+c] = s
		}
	}
}

// gemmPacked computes c += alpha·a·op(b) (alpha ∈ {+1, −1}; op(b) = bᵀ when
// transB) over all of c with the packed micro-kernel at the default tile.
func gemmPacked(c, a, b *Matrix, alpha float64, transB bool) {
	gemmPackedTile(c, a, b, alpha, transB, mr, nil)
}

// gemmPackedTile is the packed driver behind gemmPacked and the fused
// online-ABFT path. Loop order is jc→pc→ic (pack B per k-panel, pack A per
// row block), so k ascends for every output element no matter how the
// blocks fall. tm ∈ {2, 4} selects the micro-tile height (both satisfy the
// determinism contract, so the choice is purely a throughput knob).
//
// When fa is non-nil the pack passes accumulate the operand checksums
// (fa.asum once per k-panel on the first column slab, fa.bsum once per
// (j,k) slab pair) and the final k-block's kernels additionally fold each
// finished C value into fa.rs/fa.cs — the running row/column checksums the
// online verifier compares at the panel boundary. Earlier k-blocks run the
// plain kernels: a C value is folded exactly once, after its last update,
// so the checksum also witnesses corruption of previously written C.
func gemmPackedTile(c, a, b *Matrix, alpha float64, transB bool, tm int, fa *fusedAcc) {
	m, kdim, n := a.Rows, a.Cols, c.Cols
	bbuf := getBuf(kcBlock * ncBlock)
	abuf := getBuf(mcBlock * kcBlock)
	defer putBuf(bbuf)
	defer putBuf(abuf)
	for j0 := 0; j0 < n; j0 += ncBlock {
		nw := min(ncBlock, n-j0)
		for k0 := 0; k0 < kdim; k0 += kcBlock {
			kb := min(kcBlock, kdim-k0)
			var bsum []float64
			if fa != nil && fa.bsum != nil {
				bsum = fa.bsum[k0 : k0+kb]
			}
			packB(*bbuf, b, k0, kb, j0, nw, transB, bsum)
			fuse := fa != nil && fa.rs != nil && fa.cs != nil && k0+kb == kdim
			for i0 := 0; i0 < m; i0 += mcBlock {
				mb := min(mcBlock, m-i0)
				var asum []float64
				if fa != nil && fa.asum != nil && j0 == 0 {
					asum = fa.asum[k0 : k0+kb]
				}
				packA(*abuf, a, i0, mb, k0, kb, alpha, tm, asum)
				for jr := 0; jr < nw; jr += nr {
					cols := min(nr, nw-jr)
					bp := (*bbuf)[(jr/nr)*kb*nr:]
					for ir := 0; ir < mb; ir += tm {
						rows := min(tm, mb-ir)
						ap := (*abuf)[(ir/tm)*kb*tm:]
						cd := c.Data[(i0+ir)*c.Stride+j0+jr:]
						full := rows == tm && cols == nr
						switch {
						case fuse:
							rs := fa.rs[i0+ir:]
							cs := fa.cs[j0+jr:]
							switch {
							case full && tm == mr:
								kern2x4Fused(kb, ap, bp, cd, c.Stride, rs, cs)
							case full:
								kern4x4Fused(kb, ap, bp, cd, c.Stride, rs, cs)
							default:
								kernEdgeFused(kb, rows, cols, ap, bp, cd, c.Stride, tm, rs, cs)
							}
						case full && tm == mr:
							kern2x4(kb, ap, bp, cd, c.Stride)
						case full:
							kern4x4(kb, ap, bp, cd, c.Stride)
						default:
							kernEdge(kb, rows, cols, ap, bp, cd, c.Stride, tm)
						}
					}
				}
			}
		}
	}
}

// gemmSimple is the unpacked blocked loop for problems too small to
// amortize panel copies. Same ascending-k-per-element order, same result
// bits.
func gemmSimple(c, a, b *Matrix, alpha float64, transB bool) {
	n, kdim, m := a.Rows, a.Cols, c.Cols
	for ii := 0; ii < n; ii += gemmBlock {
		iMax := min(ii+gemmBlock, n)
		for kk := 0; kk < kdim; kk += gemmBlock {
			kMax := min(kk+gemmBlock, kdim)
			for jj := 0; jj < m; jj += gemmBlock {
				jMax := min(jj+gemmBlock, m)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+m]
					arow := a.Data[i*a.Stride : i*a.Stride+kdim]
					if transB {
						for j := jj; j < jMax; j++ {
							s := crow[j]
							brow := b.Data[j*b.Stride : j*b.Stride+kdim]
							for p := kk; p < kMax; p++ {
								s += alpha * arow[p] * brow[p]
							}
							crow[j] = s
						}
						continue
					}
					for p := kk; p < kMax; p++ {
						av := alpha * arow[p]
						brow := b.Data[p*b.Stride : p*b.Stride+m]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// gemmSerial dispatches one row band to the packed or simple path by size.
// Both produce identical bits, so the choice is invisible to callers.
func gemmSerial(c, a, b *Matrix, alpha float64, transB bool) {
	if 2*a.Rows*a.Cols*c.Cols < packMinFlops {
		gemmSimple(c, a, b, alpha, transB)
		return
	}
	gemmPacked(c, a, b, alpha, transB)
}

// mulAdd is the shared entry: c += alpha·a·op(b), parallel over row bands
// when the problem clears the threshold and the budget allows.
func mulAdd(c, a, b *Matrix, alpha float64, transB bool) {
	m, kdim, n := a.Rows, a.Cols, c.Cols
	if m == 0 || n == 0 || kdim == 0 {
		return
	}
	workers := workersFor(m, 2*m*n*kdim)
	if workers <= 1 {
		gemmSerial(c, a, b, alpha, transB)
		return
	}
	runBands(rowBands(m, workers), func(lo, hi int) {
		gemmSerial(c.View(lo, 0, hi-lo, n), a.View(lo, 0, hi-lo, kdim), b, alpha, transB)
	})
}

// SyrkLowerSub computes c -= l·lᵀ on the lower triangle of c (including the
// diagonal), the trailing update of the blocked Cholesky. Sub-diagonal
// blocks go through the packed GEMM kernel; diagonal blocks use a scalar
// triangle loop. Both accumulate each element in ascending-k order from its
// stored value, so the result is bit-identical to the scalar reference at
// any block size or parallelism.
func SyrkLowerSub(c, l *Matrix) {
	n, k := c.Rows, l.Cols
	if c.Cols != n || l.Rows != n {
		panic(fmt.Sprintf("mat: SyrkLowerSub shape mismatch: c %dx%d, l %dx%d",
			c.Rows, c.Cols, l.Rows, l.Cols))
	}
	if n == 0 || k == 0 {
		return
	}
	workers := workersFor(n, n*(n+1)*k)
	if workers <= 1 {
		syrkRows(c, l, 0, n)
		return
	}
	runBands(triBands(n, workers), func(lo, hi int) {
		syrkRows(c, l, lo, hi)
	})
}

// syrkBlock is the SYRK column-block width. It is a fixed property of the
// algorithm (not of the band split) so that which path computes an element
// never depends on the worker count.
const syrkBlock = 64

// syrkRows updates rows [r0, r1) of the lower triangle of c.
func syrkRows(c, l *Matrix, r0, r1 int) {
	k := l.Cols
	for j0 := 0; j0 < r1; j0 += syrkBlock {
		jw := min(syrkBlock, c.Cols-j0)
		// Diagonal-block rows: the ragged triangle, scalar dot products.
		for i := max(r0, j0); i < min(r1, j0+jw); i++ {
			li := l.Data[i*l.Stride : i*l.Stride+k]
			crow := c.Data[i*c.Stride : i*c.Stride+i+1]
			for j := j0; j <= i; j++ {
				lj := l.Data[j*l.Stride : j*l.Stride+k]
				s := crow[j]
				for p, v := range li {
					s -= v * lj[p]
				}
				crow[j] = s
			}
		}
		// Sub-diagonal rectangle: a packed GEMM against lᵀ.
		if lo := max(r0, j0+jw); lo < r1 {
			gemmSerial(c.View(lo, j0, r1-lo, jw), l.View(lo, 0, r1-lo, k),
				l.View(j0, 0, jw, k), -1, true)
		}
	}
}

// SolveXLT solves X·Lᵀ = B in place (B overwritten with X) for lower
// triangular l — the panel solve of the blocked Cholesky. Rows are
// independent forward substitutions, so row bands parallelize with
// bit-identical results at any worker count.
func SolveXLT(b, l *Matrix) {
	n := l.Rows
	if l.Cols != n || b.Cols != n {
		panic(fmt.Sprintf("mat: SolveXLT shape mismatch: b %dx%d, l %dx%d",
			b.Rows, b.Cols, l.Rows, l.Cols))
	}
	workers := workersFor(b.Rows, b.Rows*n*n)
	solve := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := b.Data[i*b.Stride : i*b.Stride+n]
			for j := 0; j < n; j++ {
				s := row[j]
				lrow := l.Data[j*l.Stride : j*l.Stride+j]
				for p, lv := range lrow {
					s -= lv * row[p]
				}
				row[j] = s / l.At(j, j)
			}
		}
	}
	if workers <= 1 {
		solve(0, b.Rows)
		return
	}
	runBands(rowBands(b.Rows, workers), solve)
}
