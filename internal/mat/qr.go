package mat

import "math"

// QR holds a Householder QR factorization: R in the upper triangle of a
// dense matrix and the Householder vectors (columns of V) with their β
// coefficients, from which Q is applied implicitly.
type QR struct {
	R    *Matrix
	V    *Matrix // V[i][k] = v_k[i] for i ≥ k (unit-free storage)
	Beta []float64
}

// QRFactor computes the Householder QR of a (square) matrix, leaving the
// input untouched. stepHook, if non-nil, runs after each reflection.
func QRFactor(a *Matrix, stepHook func(k int) error) (*QR, error) {
	n := a.Rows
	r := a.Clone()
	v := New(n, n)
	beta := make([]float64, n)
	for k := 0; k < n; k++ {
		b, err := HouseholderStep(r, v, beta, k)
		if err != nil {
			return nil, err
		}
		_ = b
		if stepHook != nil {
			if err := stepHook(k); err != nil {
				return nil, err
			}
		}
	}
	return &QR{R: r, V: v, Beta: beta}, nil
}

// HouseholderStep performs reflection k on r (any column count ≥ n rows
// domain): it builds v from column k of rows [k, n), stores it in v's
// column k, records β, and applies H = I − β·v·vᵀ to columns [k, r.Cols).
// Exposed so the ABFT QR can interleave checksum bookkeeping.
func HouseholderStep(r, v *Matrix, beta []float64, k int) (float64, error) {
	n := r.Rows
	// Build the reflector from x = r[k:, k].
	normx := 0.0
	for i := k; i < n; i++ {
		normx += r.At(i, k) * r.At(i, k)
	}
	normx = math.Sqrt(normx)
	if normx == 0 {
		return 0, ErrSingular
	}
	alpha := -normx
	if r.At(k, k) < 0 {
		alpha = normx
	}
	v.Set(k, k, r.At(k, k)-alpha)
	for i := k + 1; i < n; i++ {
		v.Set(i, k, r.At(i, k))
	}
	vtv := 0.0
	for i := k; i < n; i++ {
		vtv += v.At(i, k) * v.At(i, k)
	}
	if vtv == 0 {
		return 0, ErrSingular
	}
	b := 2 / vtv
	beta[k] = b

	// Apply H to every remaining column (including any appended checksum
	// columns): r[k:, j] -= b·(vᵀ·r[k:, j])·v.
	for j := k; j < r.Cols; j++ {
		s := 0.0
		for i := k; i < n; i++ {
			s += v.At(i, k) * r.At(i, j)
		}
		s *= b
		for i := k; i < n; i++ {
			r.Add(i, j, -s*v.At(i, k))
		}
	}
	// Clean the numerically-zero subdiagonal of column k.
	r.Set(k, k, alpha)
	for i := k + 1; i < n; i++ {
		r.Set(i, k, 0)
	}
	return b, nil
}

// ApplyQT computes y = Qᵀ·x using the stored reflectors.
func (q *QR) ApplyQT(x []float64) []float64 {
	n := q.R.Rows
	y := make([]float64, n)
	copy(y, x)
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < n; i++ {
			s += q.V.At(i, k) * y[i]
		}
		s *= q.Beta[k]
		for i := k; i < n; i++ {
			y[i] -= s * q.V.At(i, k)
		}
	}
	return y
}

// ApplyQ computes y = Q·x (reflectors in reverse order).
func (q *QR) ApplyQ(x []float64) []float64 {
	n := q.R.Rows
	y := make([]float64, n)
	copy(y, x)
	for k := n - 1; k >= 0; k-- {
		s := 0.0
		for i := k; i < n; i++ {
			s += q.V.At(i, k) * y[i]
		}
		s *= q.Beta[k]
		for i := k; i < n; i++ {
			y[i] -= s * q.V.At(i, k)
		}
	}
	return y
}

// Solve returns x with A·x = b via R·x = Qᵀ·b.
func (q *QR) Solve(b []float64) []float64 {
	n := q.R.Rows
	y := q.ApplyQT(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		row := q.R.Data[i*q.R.Stride+i+1 : i*q.R.Stride+n]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		x[i] = s / q.R.At(i, i)
	}
	return x
}

// QMatrix materializes Q explicitly (test helper, O(n³)).
func (q *QR) QMatrix() *Matrix {
	n := q.R.Rows
	out := New(n, n)
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		col := q.ApplyQ(e)
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out
}
