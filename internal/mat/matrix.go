// Package mat provides the dense linear algebra substrate used by the ABFT
// kernels: a row-major float64 matrix type, blocked matrix multiplication,
// Cholesky factorization, LU factorization with partial pivoting, triangular
// solves, and the vector operations needed by conjugate gradient.
//
// It is written from scratch (no external BLAS) because the ABFT algorithms
// in this repository need to interleave checksum maintenance and verification
// with the factorization steps, and because the simulator needs to observe
// every element access through probe hooks (see package trace).
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	// Stride is the distance in elements between vertically adjacent
	// elements. For a freshly allocated matrix Stride == Cols; views share
	// the parent's stride.
	Stride int
	Data   []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (row-major, len r*c) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice: len(data)=%d, want %d", len(data), r*c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Stride+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns an r×c submatrix starting at (i, j) sharing storage with m.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("mat: View(%d,%d,%d,%d) out of bounds for %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Matrix{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := i*m.Stride + j
	end := (i+r-1)*m.Stride + j + c
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off:end]}
}

// Clone returns a deep copy of m with a compact stride.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute value in m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Matrix{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// SymmetricPositiveDefinite builds a well-conditioned SPD n×n matrix
// deterministically from seed: A = B Bᵀ + n·I with B pseudo-random in [0,1).
func SymmetricPositiveDefinite(n int, seed uint64) *Matrix {
	b := Random(n, n, seed)
	a := New(n, n)
	MulInto(a, b, b.Transpose())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

// Random returns an r×c matrix with deterministic pseudo-random entries in
// [0, 1), generated from seed with a SplitMix64 stream.
func Random(r, c int, seed uint64) *Matrix {
	m := New(r, c)
	s := seed
	for i := range m.Data {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		m.Data[i] = float64(z>>11) / float64(1<<53)
	}
	return m
}

// DiagonallyDominant builds a nonsingular n×n matrix suitable for LU with
// partial pivoting: random entries with the diagonal boosted by n.
func DiagonallyDominant(n int, seed uint64) *Matrix {
	m := Random(n, n, seed)
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}
