package mat

import (
	"math"
	"testing"
)

// sumTol returns the checksum comparison tolerance for a problem: the sums
// are reduced with a different rounding association than a reference sweep,
// so they agree to accumulated roundoff, not to the bit.
func sumTol(m, k, n int) float64 {
	dim := float64(max(m, max(k, n)))
	return 1e-11 * dim * dim
}

// refSums derives every checksum with plain scalar sweeps over the final
// operands and result.
func refSums(c, a, b *Matrix) *FusedSums {
	fs := &FusedSums{
		RowSums: make([]float64, c.Rows),
		ColSums: make([]float64, c.Cols),
		ASums:   make([]float64, a.Cols),
		BSums:   make([]float64, b.Rows),
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			fs.RowSums[i] += c.At(i, j)
			fs.ColSums[j] += c.At(i, j)
		}
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			fs.ASums[k] += a.At(i, k)
		}
	}
	for k := 0; k < b.Rows; k++ {
		for j := 0; j < b.Cols; j++ {
			fs.BSums[k] += b.At(k, j)
		}
	}
	return fs
}

func sumsClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s[%d] = %v, want %v (tol %g)", name, i, got[i], want[i], tol)
			return
		}
	}
}

// TestMulAddIntoFusedBitExact is the fused path's determinism contract: c
// must be bit-identical to the naive loop (hence to MulAddInto) across odd
// shapes, strided views, and parallelism 1/2/8, at both micro-tile heights,
// while the fused checksums agree with reference sweeps to roundoff.
func TestMulAddIntoFusedBitExact(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {17, 31, 13}, {64, 64, 64},
		{65, 127, 33}, {100, 100, 100}, {129, 65, 97}, {40, 256, 40},
	}
	for _, sh := range shapes {
		for _, contig := range []bool{true, false} {
			var a, b, c0 *Matrix
			if contig {
				a = Random(sh.m, sh.k, uint64(sh.m*1000+sh.k))
				b = Random(sh.k, sh.n, uint64(sh.k*1000+sh.n))
				c0 = Random(sh.m, sh.n, 7)
			} else {
				a = strided(sh.m, sh.k, uint64(sh.m*1000+sh.k))
				b = strided(sh.k, sh.n, uint64(sh.k*1000+sh.n))
				c0 = strided(sh.m, sh.n, 7)
			}
			want := c0.Clone()
			naiveMulAdd(want, a, b)
			wantSums := refSums(want, a, b)
			tol := sumTol(sh.m, sh.k, sh.n)
			for _, par := range []int{1, 2, 8} {
				got := c0.Clone()
				fs := &FusedSums{
					RowSums: make([]float64, sh.m),
					ColSums: make([]float64, sh.n),
					ASums:   make([]float64, sh.k),
					BSums:   make([]float64, sh.k),
				}
				withParallelism(par, func() { MulAddIntoFused(got, a, b, fs) })
				if !bitEqual(got, want) {
					t.Errorf("%dx%dx%d contig=%v par=%d: fused C differs from naive loop (max diff %g)",
						sh.m, sh.k, sh.n, contig, par, maxDiff(got, want))
				}
				sumsClose(t, "RowSums", fs.RowSums, wantSums.RowSums, tol)
				sumsClose(t, "ColSums", fs.ColSums, wantSums.ColSums, tol)
				sumsClose(t, "ASums", fs.ASums, wantSums.ASums, tol)
				sumsClose(t, "BSums", fs.BSums, wantSums.BSums, tol)
			}
		}
	}
}

// TestGemmPackedTile4BitExact pins the 4×4 tile (plain and fused) to the
// same bit-exactness contract as the default 2×4, driving the packed path
// directly so the size dispatch cannot route around it.
func TestGemmPackedTile4BitExact(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {4, 8, 4}, {7, 9, 6}, {17, 300, 13}, {65, 127, 33}, {100, 100, 100},
	}
	for _, sh := range shapes {
		a := Random(sh.m, sh.k, uint64(sh.m+sh.k))
		b := Random(sh.k, sh.n, uint64(sh.k+sh.n))
		c0 := Random(sh.m, sh.n, 11)
		want := c0.Clone()
		naiveMulAdd(want, a, b)
		wantSums := refSums(want, a, b)
		tol := sumTol(sh.m, sh.k, sh.n)

		got := c0.Clone()
		gemmPackedTile(got, a, b, 1, false, 4, nil)
		if !bitEqual(got, want) {
			t.Errorf("%dx%dx%d: 4x4 tile differs from naive loop (max diff %g)",
				sh.m, sh.k, sh.n, maxDiff(got, want))
		}

		got = c0.Clone()
		fa := &fusedAcc{
			rs:   make([]float64, sh.m),
			cs:   make([]float64, sh.n),
			asum: make([]float64, sh.k),
			bsum: make([]float64, sh.k),
		}
		gemmPackedTile(got, a, b, 1, false, 4, fa)
		if !bitEqual(got, want) {
			t.Errorf("%dx%dx%d: fused 4x4 tile differs from naive loop (max diff %g)",
				sh.m, sh.k, sh.n, maxDiff(got, want))
		}
		sumsClose(t, "rs", fa.rs, wantSums.RowSums, tol)
		sumsClose(t, "cs", fa.cs, wantSums.ColSums, tol)
		sumsClose(t, "asum", fa.asum, wantSums.ASums, tol)
		sumsClose(t, "bsum", fa.bsum, wantSums.BSums, tol)
	}
}

// TestKernEdgeAllPartialTiles exercises every (rows, cols) partial-tile
// combination both tile heights can produce — rows ∈ 1..4, cols ∈ 1..4 —
// under the plain and fused packed paths, asserting bit-equality with the
// scalar loop. Shapes are built so the bottom-right fringe tile is exactly
// (rows, cols); k spans below, at, and beyond one kc unroll quantum.
func TestKernEdgeAllPartialTiles(t *testing.T) {
	for _, tm := range []int{2, 4} {
		for rows := 1; rows <= 4; rows++ {
			for cols := 1; cols <= 4; cols++ {
				for _, k := range []int{1, 3, 4, 9} {
					m := tm + rows // one full tile row plus a partial of exactly `rows`
					n := nr + cols // one full tile column plus a partial of exactly `cols`
					a := Random(m, k, uint64(100*rows+10*cols+k))
					b := Random(k, n, uint64(200*rows+20*cols+k))
					c0 := Random(m, n, uint64(tm))
					want := c0.Clone()
					naiveMulAdd(want, a, b)

					got := c0.Clone()
					gemmPackedTile(got, a, b, 1, false, tm, nil)
					if !bitEqual(got, want) {
						t.Fatalf("tm=%d edge %dx%d k=%d: plain path differs from scalar loop", tm, rows, cols, k)
					}

					got = c0.Clone()
					fa := &fusedAcc{rs: make([]float64, m), cs: make([]float64, n)}
					gemmPackedTile(got, a, b, 1, false, tm, fa)
					if !bitEqual(got, want) {
						t.Fatalf("tm=%d edge %dx%d k=%d: fused path differs from scalar loop", tm, rows, cols, k)
					}
					wantSums := refSums(want, a, b)
					tol := sumTol(m, k, n)
					sumsClose(t, "rs", fa.rs, wantSums.RowSums, tol)
					sumsClose(t, "cs", fa.cs, wantSums.ColSums, tol)
				}
			}
		}
	}
}

// TestKernEdgeNaNInfPropagation: partial tiles must propagate NaN/Inf
// exactly like the scalar loop on both paths, and the fused checksums must
// absorb the poison instead of masking it.
func TestKernEdgeNaNInfPropagation(t *testing.T) {
	for _, tm := range []int{2, 4} {
		m, k, n := tm+1, 5, nr+3 // bottom and right fringes both partial
		a := Random(m, k, 3)
		b := Random(k, n, 4)
		a.Set(m-1, 2, math.NaN()) // lands in the bottom partial tile
		b.Set(1, n-1, math.Inf(1))
		a.Set(0, 1, 0) // 0×Inf = NaN must not be skipped
		c0 := Random(m, n, 5)
		want := c0.Clone()
		naiveMulAdd(want, a, b)

		got := c0.Clone()
		gemmPackedTile(got, a, b, 1, false, tm, nil)
		if !bitEqual(got, want) {
			t.Fatalf("tm=%d: plain path NaN/Inf propagation differs from scalar loop", tm)
		}
		got = c0.Clone()
		fa := &fusedAcc{rs: make([]float64, m), cs: make([]float64, n)}
		gemmPackedTile(got, a, b, 1, false, tm, fa)
		if !bitEqual(got, want) {
			t.Fatalf("tm=%d: fused path NaN/Inf propagation differs from scalar loop", tm)
		}
		if !math.IsNaN(fa.rs[m-1]) {
			t.Errorf("tm=%d: rs[%d] = %v, want NaN folded from poisoned row", tm, m-1, fa.rs[m-1])
		}
		if !math.IsNaN(fa.cs[n-1]) {
			t.Errorf("tm=%d: cs[%d] = %v, want NaN folded from poisoned column", tm, n-1, fa.cs[n-1])
		}
	}
}

// TestMulAddIntoFusedPartialSums: nil slices skip that accumulation, and
// RowSums/ColSums must be requested together.
func TestMulAddIntoFusedPartialSums(t *testing.T) {
	m, k, n := 20, 30, 25
	a := Random(m, k, 1)
	b := Random(k, n, 2)
	want := New(m, n)
	naiveMulAdd(want, a, b)
	wantSums := refSums(want, a, b)

	got := New(m, n)
	fs := &FusedSums{ASums: make([]float64, k), BSums: make([]float64, k)}
	MulAddIntoFused(got, a, b, fs)
	if !bitEqual(got, want) {
		t.Fatal("operand-sums-only fused call: C differs from naive loop")
	}
	tol := sumTol(m, k, n)
	sumsClose(t, "ASums", fs.ASums, wantSums.ASums, tol)
	sumsClose(t, "BSums", fs.BSums, wantSums.BSums, tol)

	defer func() {
		if recover() == nil {
			t.Error("RowSums without ColSums did not panic")
		}
	}()
	MulAddIntoFused(got, a, b, &FusedSums{RowSums: make([]float64, m)})
}
