package mat

import "fmt"

// CSR is a sparse matrix in compressed sparse row format, used by the
// conjugate gradient kernels. CG is the paper's memory-intensive workload;
// a sparse operator gives it the low arithmetic intensity (and the
// ABFT-to-other reference ratio) the evaluation relies on.
type CSR struct {
	N      int // square dimension
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Val) }

// MulVecInto computes y = a·x.
func (a *CSR) MulVecInto(y, x []float64) {
	if len(x) != a.N || len(y) != a.N {
		panic(fmt.Sprintf("mat: CSR MulVecInto dims y[%d] x[%d] for n=%d", len(y), len(x), a.N))
	}
	for i := 0; i < a.N; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
}

// RowDot returns row i of a dotted with x — used for single-element
// recomputation during ABFT correction.
func (a *CSR) RowDot(i int, x []float64) float64 {
	s := 0.0
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		s += a.Val[k] * x[a.Col[k]]
	}
	return s
}

// Diag extracts the diagonal (the Jacobi preconditioner M).
func (a *CSR) Diag() []float64 {
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.Col[k]) == i {
				d[i] = a.Val[k]
			}
		}
	}
	return d
}

// Poisson2D builds the standard 5-point stencil discretization of the
// Poisson equation on an nx×ny grid: SPD, 4 on the diagonal, −1 to each
// neighbor. This is the classic CG benchmark operator.
func Poisson2D(nx, ny int) *CSR {
	n := nx * ny
	a := &CSR{N: n, RowPtr: make([]int32, 1, n+1)}
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			// Keep column indices sorted: S, W, C, E, N.
			if y > 0 {
				a.Col = append(a.Col, idx(x, y-1))
				a.Val = append(a.Val, -1)
			}
			if x > 0 {
				a.Col = append(a.Col, idx(x-1, y))
				a.Val = append(a.Val, -1)
			}
			a.Col = append(a.Col, idx(x, y))
			a.Val = append(a.Val, 4)
			if x < nx-1 {
				a.Col = append(a.Col, idx(x+1, y))
				a.Val = append(a.Val, -1)
			}
			if y < ny-1 {
				a.Col = append(a.Col, idx(x, y+1))
				a.Val = append(a.Val, -1)
			}
			a.RowPtr = append(a.RowPtr, int32(len(a.Val)))
		}
	}
	return a
}

// Dense expands the CSR matrix (for small test cross-checks).
func (a *CSR) Dense() *Matrix {
	m := New(a.N, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			m.Set(i, int(a.Col[k]), a.Val[k])
		}
	}
	return m
}
