package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when a non-positive pivot
// is encountered.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// ErrSingular is returned by LU when no usable pivot exists in a column.
var ErrSingular = errors.New("mat: matrix is singular")

// Cholesky factors the SPD matrix a in place into its lower-triangular
// Cholesky factor L (a = L·Lᵀ). The strictly upper triangle is zeroed.
// It is the unblocked reference used by the blocked right-looking variant.
func Cholesky(a *Matrix) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := a.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// CholeskyBlocked factors the SPD matrix a in place with the right-looking
// blocked algorithm of §2.1 of the paper: for each diagonal block A11,
// (1) factor A11 = L11·L11ᵀ, (2) solve L21 from A21 = L21·L11ᵀ,
// (3) update the trailing matrix A22 -= L21·L21ᵀ, (4) recurse on A22.
// stepHook, if non-nil, runs after each iteration with the trailing offset;
// the ABFT layer uses it to verify checksums per step.
func CholeskyBlocked(a *Matrix, block int, stepHook func(done int) error) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: CholeskyBlocked of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	if block <= 0 {
		block = 32
	}
	for j := 0; j < n; j += block {
		b := min(block, n-j)
		a11 := a.View(j, j, b, b)
		if err := Cholesky(a11); err != nil {
			return err
		}
		if j+b < n {
			rest := n - j - b
			a21 := a.View(j+b, j, rest, b)
			// Solve L21·L11ᵀ = A21  (forward substitution on rows of A21).
			SolveXLT(a21, a11)
			// Trailing update A22 -= L21·L21ᵀ (lower triangle only; the
			// upper triangle is dead storage until zeroed at the end).
			a22 := a.View(j+b, j+b, rest, rest)
			SyrkLowerSub(a22, a21)
		}
		if stepHook != nil {
			if err := stepHook(j + b); err != nil {
				return err
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// luPanelBlock is the panel width of the blocked right-looking LU, and
// luBlockMin the matrix size from which the blocked path pays off.
const (
	luPanelBlock = 48
	luBlockMin   = 96
)

// LU factors a in place into P·a = L·U with partial pivoting. The unit lower
// triangle of L is stored below the diagonal, U on and above. It returns the
// pivot permutation (piv[k] = row swapped into position k at step k).
// stepHook, if non-nil, runs after each elimination column; the ABFT layer
// uses it for per-step checksum verification.
//
// Large hook-free factorizations take the blocked right-looking path (the
// HPL schema: panel factorization, pivot swaps across the full rows, a
// small triangular solve for U12, and a rank-k trailing update through the
// packed GEMM kernel). With a stepHook the column-at-a-time reference runs
// instead, preserving the exact per-column intermediate states hooks
// observe.
func LU(a *Matrix, stepHook func(col int) error) (piv []int, err error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: LU of non-square %dx%d", a.Rows, a.Cols))
	}
	if stepHook == nil && a.Rows >= luBlockMin {
		return luBlocked(a)
	}
	return luUnblocked(a, stepHook)
}

// luBlocked is the right-looking blocked LU behind hook-free calls.
func luBlocked(a *Matrix) ([]int, error) {
	n := a.Rows
	piv := make([]int, n)
	for k0 := 0; k0 < n; k0 += luPanelBlock {
		bw := min(luPanelBlock, n-k0)
		// Panel factorization over columns [k0, k0+bw): pivot search on the
		// fully updated panel columns, swaps applied to the whole rows.
		for j := k0; j < k0+bw; j++ {
			p, maxv := j, math.Abs(a.At(j, j))
			for i := j + 1; i < n; i++ {
				if v := math.Abs(a.At(i, j)); v > maxv {
					p, maxv = i, v
				}
			}
			if maxv == 0 {
				return piv, ErrSingular
			}
			piv[j] = p
			if p != j {
				SwapRows(a, j, p)
			}
			d := a.At(j, j)
			for i := j + 1; i < n; i++ {
				m := a.At(i, j) / d
				a.Set(i, j, m)
				urow := a.Data[j*a.Stride+j+1 : j*a.Stride+k0+bw]
				irow := a.Data[i*a.Stride+j+1 : i*a.Stride+k0+bw]
				for q, uv := range urow {
					irow[q] -= m * uv
				}
			}
		}
		if k0+bw < n {
			rest := n - k0 - bw
			// U12 = L11⁻¹·A12: forward substitution with the unit lower
			// panel triangle, row by row.
			for r := 1; r < bw; r++ {
				lrow := a.Data[(k0+r)*a.Stride+k0 : (k0+r)*a.Stride+k0+r]
				rrow := a.Data[(k0+r)*a.Stride+k0+bw : (k0+r)*a.Stride+n]
				for p, lv := range lrow {
					prow := a.Data[(k0+p)*a.Stride+k0+bw : (k0+p)*a.Stride+n]
					for q, pv := range prow {
						rrow[q] -= lv * pv
					}
				}
			}
			// Trailing rank-bw update A22 -= L21·U12 through the packed
			// parallel kernel — the dominant cost of the factorization.
			a21 := a.View(k0+bw, k0, rest, bw)
			u12 := a.View(k0, k0+bw, bw, rest)
			a22 := a.View(k0+bw, k0+bw, rest, rest)
			mulAdd(a22, a21, u12, -1, false)
		}
	}
	return piv, nil
}

// luUnblocked is the column-at-a-time reference elimination.
func luUnblocked(a *Matrix, stepHook func(col int) error) (piv []int, err error) {
	n := a.Rows
	piv = make([]int, n)
	for k := 0; k < n; k++ {
		// Partial pivot: largest |a[i][k]| for i >= k.
		p, maxv := k, math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return piv, ErrSingular
		}
		piv[k] = p
		if p != k {
			SwapRows(a, k, p)
		}
		d := a.At(k, k)
		for i := k + 1; i < n; i++ {
			m := a.At(i, k) / d
			a.Set(i, k, m)
			if m == 0 {
				continue
			}
			urow := a.Data[k*a.Stride+k+1 : k*a.Stride+n]
			irow := a.Data[i*a.Stride+k+1 : i*a.Stride+n]
			for j, uv := range urow {
				irow[j] -= m * uv
			}
		}
		if stepHook != nil {
			if err := stepHook(k); err != nil {
				return piv, err
			}
		}
	}
	return piv, nil
}

// SwapRows exchanges rows i and j of a, covering all columns.
func SwapRows(a *Matrix, i, j int) {
	ri, rj := a.Row(i), a.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// SolveLU solves a·x = b given the in-place LU factorization lu and pivots
// from LU. b is not modified.
func SolveLU(lu *Matrix, piv []int, b []float64) []float64 {
	n := lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveLU rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		if piv[k] != k {
			x[k], x[piv[k]] = x[piv[k]], x[k]
		}
	}
	// Forward: L·y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		row := lu.Data[i*lu.Stride : i*lu.Stride+i]
		s := x[i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Backward: U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := lu.Data[i*lu.Stride+i+1 : i*lu.Stride+n]
		s := x[i]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		x[i] = s / lu.At(i, i)
	}
	return x
}

// SolveLower solves L·x = b for lower-triangular L (non-unit diagonal).
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*l.Stride : i*l.Stride+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveUpperT solves Lᵀ·x = b for lower-triangular L (i.e. an upper
// triangular solve against the transpose of L).
func SolveUpperT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
