package mat

import (
	"fmt"
	"math/bits"
	"sync"
)

// Packed float32 GEMM micro-kernel layer — the mixed-precision sibling of
// kernel.go. Data and arithmetic are float32 (the inference-serving
// precision); every checksum and statistic the fused path derives is
// accumulated in float64 (see fused32.go), so ABFT detection keeps double
// precision over single-precision data.
//
// The machinery mirrors the float64 path: Goto-style packing into pooled
// contiguous buffers, a 2×4 register micro-kernel, jc→pc→ic blocking, and
// deterministic row-band parallelism. The determinism contract is the same:
// every output element accumulates its k-products in ascending order in
// float32, so the result is bit-identical to the scalar float32 reference
// loop at any blocking or parallelism. Only C += A·B is provided (no alpha,
// no transpose) — that is the serving path's only shape.

// f32 packing buffers get their own size-classed pools (same scheme as
// bufPools; see the comment there).
var bufPools32 [maxPoolClass + 1]sync.Pool

func getBuf32(n int) *[]float32 {
	if n < 1 {
		n = 1
	}
	class := bits.Len(uint(n - 1))
	if class > maxPoolClass {
		p := make([]float32, n)
		return &p
	}
	if p, ok := bufPools32[class].Get().(*[]float32); ok {
		*p = (*p)[:n]
		return p
	}
	p := make([]float32, n, 1<<class)
	return &p
}

func putBuf32(p *[]float32) {
	c := cap(*p)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class > maxPoolClass {
		return
	}
	*p = (*p)[:c]
	bufPools32[class].Put(p)
}

// packA32 copies rows [i0, i0+m) × cols [k0, k0+kb) of a into buf as tm-row
// micro-panels in k-major order, zero-padded to tm rows.
//
// When asum is non-nil (length kb) the copy also accumulates the panel's
// float64 column checksums — asum[p] += Σ_rows a[i0+r][k0+p] — and when mom
// is non-nil it folds every packed element into the operand's magnitude
// statistics. Both ride the packing pass, so the V-ABFT threshold inputs
// cost no traversal beyond the copy GEMM already pays.
func packA32(buf []float32, a *Matrix32, i0, m, k0, kb, tm int, asum []float64, mom *Moments) {
	idx := 0
	for r0 := 0; r0 < m; r0 += tm {
		rows := min(tm, m-r0)
		base := (i0+r0)*a.Stride + k0
		for p := 0; p < kb; p++ {
			s := 0.0
			for r := 0; r < rows; r++ {
				v := a.Data[base+r*a.Stride+p]
				buf[idx+r] = v
				if asum != nil {
					s += float64(v)
					if mom != nil {
						mom.Observe(float64(v))
					}
				}
			}
			for r := rows; r < tm; r++ {
				buf[idx+r] = 0
			}
			if asum != nil {
				asum[p] += s
			}
			idx += tm
		}
	}
}

// packB32 copies rows [k0, k0+kb) × cols [j0, j0+nw) of b into buf as
// nr-column micro-panels in k-major order, zero-padded to nr columns,
// accumulating the panel's float64 row checksums (bsum[p] += Σ_cols
// b[k0+p][j0+c]) and magnitude statistics when requested.
func packB32(buf []float32, b *Matrix32, k0, kb, j0, nw int, bsum []float64, mom *Moments) {
	idx := 0
	for c0 := 0; c0 < nw; c0 += nr {
		cols := min(nr, nw-c0)
		for p := 0; p < kb; p++ {
			s := 0.0
			src := b.Data[(k0+p)*b.Stride+j0+c0:]
			for c := 0; c < cols; c++ {
				v := src[c]
				buf[idx+c] = v
				if bsum != nil {
					s += float64(v)
					if mom != nil {
						mom.Observe(float64(v))
					}
				}
			}
			for c := cols; c < nr; c++ {
				buf[idx+c] = 0
			}
			if bsum != nil {
				bsum[p] += s
			}
			idx += nr
		}
	}
}

// kern2x4f32 is the float32 full-tile micro-kernel: a 2×4 block of C gains
// the kb-step product of an A micro-panel and a B micro-panel, k unrolled by
// four. Accumulators are seeded from C and updated in ascending-k order in
// float32 (the determinism contract).
func kern2x4f32(kb int, ap, bp []float32, cd []float32, ldc int) {
	c0 := cd[0*ldc : 0*ldc+4]
	c1 := cd[1*ldc : 1*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	ap = ap[:mr*kb]
	bp = bp[:nr*kb]
	pa, pb := 0, 0
	for ; pa+8 <= len(ap); pa, pb = pa+8, pb+16 {
		a := ap[pa : pa+8]
		b := bp[pb : pb+16]
		a0, a1 := a[0], a[1]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[2], a[3]
		b0, b1, b2, b3 = b[4], b[5], b[6], b[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[4], a[5]
		b0, b1, b2, b3 = b[8], b[9], b[10], b[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = a[6], a[7]
		b0, b1, b2, b3 = b[12], b[13], b[14], b[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	for ; pa+2 <= len(ap); pa, pb = pa+2, pb+4 {
		a0, a1 := ap[pa], ap[pa+1]
		b := bp[pb : pb+4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
}

// kernEdge32 handles partial tiles at the right/bottom fringe with the same
// per-element ascending-k float32 accumulation as the full-tile kernel.
func kernEdge32(kb, rows, cols int, ap, bp, cd []float32, ldc, tm int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := cd[r*ldc+c]
			for p := 0; p < kb; p++ {
				s += ap[p*tm+r] * bp[p*nr+c]
			}
			cd[r*ldc+c] = s
		}
	}
}

// fusedAcc32 is the per-band view of the float64 checksum accumulators the
// fused float32 path fills: rs/cs are the output row/column sums, ars/acs
// the matching absolute-value sums (the per-line magnitude the adaptive
// threshold scales with), asum/bsum the operand checksums in k space, and
// amom/bmom the operand magnitude statistics. Nil slices skip that
// accumulation.
type fusedAcc32 struct {
	rs, cs     []float64
	ars, acs   []float64
	asum, bsum []float64
	amom, bmom *Moments
}

// gemmPacked32 is the packed float32 driver. Loop order is jc→pc→ic like
// gemmPackedTile, so k ascends for every output element. When fa is non-nil
// the pack passes accumulate operand checksums and statistics (asum/amom
// once per k-panel on the first column slab, bsum/bmom once per (j,k) slab
// pair) and the final k-block's kernels fold each finished C value into
// rs/cs/ars/acs — a value is folded exactly once, after its last update.
func gemmPacked32(c, a, b *Matrix32, fa *fusedAcc32) {
	m, kdim, n := a.Rows, a.Cols, c.Cols
	bbuf := getBuf32(kcBlock * ncBlock)
	abuf := getBuf32(mcBlock * kcBlock)
	defer putBuf32(bbuf)
	defer putBuf32(abuf)
	for j0 := 0; j0 < n; j0 += ncBlock {
		nw := min(ncBlock, n-j0)
		for k0 := 0; k0 < kdim; k0 += kcBlock {
			kb := min(kcBlock, kdim-k0)
			var bsum []float64
			var bmom *Moments
			if fa != nil && fa.bsum != nil {
				bsum = fa.bsum[k0 : k0+kb]
				bmom = fa.bmom
			}
			packB32(*bbuf, b, k0, kb, j0, nw, bsum, bmom)
			fuse := fa != nil && fa.rs != nil && fa.cs != nil && k0+kb == kdim
			for i0 := 0; i0 < m; i0 += mcBlock {
				mb := min(mcBlock, m-i0)
				var asum []float64
				var amom *Moments
				if fa != nil && fa.asum != nil && j0 == 0 {
					asum = fa.asum[k0 : k0+kb]
					amom = fa.amom
				}
				packA32(*abuf, a, i0, mb, k0, kb, mr, asum, amom)
				for jr := 0; jr < nw; jr += nr {
					cols := min(nr, nw-jr)
					bp := (*bbuf)[(jr/nr)*kb*nr:]
					for ir := 0; ir < mb; ir += mr {
						rows := min(mr, mb-ir)
						ap := (*abuf)[(ir/mr)*kb*mr:]
						cd := c.Data[(i0+ir)*c.Stride+j0+jr:]
						full := rows == mr && cols == nr
						if full {
							kern2x4f32(kb, ap, bp, cd, c.Stride)
						} else {
							kernEdge32(kb, rows, cols, ap, bp, cd, c.Stride, mr)
						}
						if fuse {
							foldTile32(cd, c.Stride, rows, cols,
								fa.rs[i0+ir:], fa.cs[j0+jr:], fa.ars[i0+ir:], fa.acs[j0+jr:])
						}
					}
				}
			}
		}
	}
}

// foldTile32 adds a stored rows×cols float32 tile's final values (and their
// magnitudes) into the running float64 row/column checksum accumulators.
func foldTile32(cd []float32, ldc, rows, cols int, rs, cs, ars, acs []float64) {
	for r := 0; r < rows; r++ {
		row := cd[r*ldc : r*ldc+cols]
		sum, asum := 0.0, 0.0
		for c, v := range row {
			f := float64(v)
			sum += f
			cs[c] += f
			if f < 0 {
				f = -f
			}
			asum += f
			acs[c] += f
		}
		rs[r] += sum
		ars[r] += asum
	}
}

// gemmSimple32 is the unpacked blocked float32 loop for problems too small
// to amortize panel copies. Same ascending-k-per-element order, same result
// bits as the packed path.
func gemmSimple32(c, a, b *Matrix32) {
	n, kdim, m := a.Rows, a.Cols, c.Cols
	for ii := 0; ii < n; ii += gemmBlock {
		iMax := min(ii+gemmBlock, n)
		for kk := 0; kk < kdim; kk += gemmBlock {
			kMax := min(kk+gemmBlock, kdim)
			for jj := 0; jj < m; jj += gemmBlock {
				jMax := min(jj+gemmBlock, m)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+m]
					arow := a.Data[i*a.Stride : i*a.Stride+kdim]
					for p := kk; p < kMax; p++ {
						av := arow[p]
						brow := b.Data[p*b.Stride : p*b.Stride+m]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// gemmSerial32 dispatches one row band to the packed or simple path by the
// same size threshold as gemmSerial. When fa is non-nil the sub-threshold
// path derives the sums in a post-pass (everything is L1-resident there).
func gemmSerial32(c, a, b *Matrix32, fa *fusedAcc32) {
	if 2*a.Rows*a.Cols*c.Cols < packMinFlops {
		gemmSimple32(c, a, b)
		if fa != nil {
			foldSimple32(c, a, b, fa)
		}
		return
	}
	gemmPacked32(c, a, b, fa)
}

// foldSimple32 derives the fused sums for the sub-threshold path: one
// post-pass over the small operands and output.
func foldSimple32(c, a, b *Matrix32, fa *fusedAcc32) {
	if fa.rs != nil && fa.cs != nil {
		for i := 0; i < c.Rows; i++ {
			foldTile32(c.Data[i*c.Stride:], c.Stride, 1, c.Cols,
				fa.rs[i:], fa.cs, fa.ars[i:], fa.acs)
		}
	}
	if fa.asum != nil {
		for i := 0; i < a.Rows; i++ {
			row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			for k, v := range row {
				fa.asum[k] += float64(v)
				if fa.amom != nil {
					fa.amom.Observe(float64(v))
				}
			}
		}
	}
	if fa.bsum != nil {
		for k := 0; k < b.Rows; k++ {
			row := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			s := 0.0
			for _, v := range row {
				s += float64(v)
				if fa.bmom != nil {
					fa.bmom.Observe(float64(v))
				}
			}
			fa.bsum[k] += s
		}
	}
}

// MulAddInto32 computes c += a×b in float32, parallel over row bands when
// the problem clears the threshold. Bit-identical to the scalar float32
// reference loop at any parallelism.
func MulAddInto32(c, a, b *Matrix32) {
	checkShape32(c, a, b, "MulAddInto32")
	m, kdim, n := a.Rows, a.Cols, c.Cols
	if m == 0 || n == 0 || kdim == 0 {
		return
	}
	workers := workersFor(m, 2*m*n*kdim)
	if workers <= 1 {
		gemmSerial32(c, a, b, nil)
		return
	}
	runBands(rowBands(m, workers), func(lo, hi int) {
		gemmSerial32(c.View(lo, 0, hi-lo, n), a.View(lo, 0, hi-lo, kdim), b, nil)
	})
}

func checkShape32(c, a, b *Matrix32, name string) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch: c %dx%d += a %dx%d × b %dx%d",
			name, c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
