package mat

import (
	"math"
	"testing"
)

// naiveMulAdd is the scalar reference every GEMM path must match to the
// bit: each element accumulates its k-products in ascending order starting
// from the stored value.
func naiveMulAdd(c, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
}

// bitEqual compares element-wise by bit pattern, so NaNs compare equal to
// themselves and −0 differs from +0.
func bitEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// withParallelism runs fn at a fixed worker budget and restores the old one.
func withParallelism(w int, fn func()) {
	old := SetParallelism(w)
	defer SetParallelism(old)
	fn()
}

// strided returns an r×c matrix with Stride > Cols (a view into a wider
// parent) holding deterministic random data.
func strided(r, c int, seed uint64) *Matrix {
	parent := Random(r+2, c+5, seed)
	return parent.View(1, 2, r, c)
}

// TestMulAddIntoBitExact checks the packed/parallel GEMM against the naive
// triple loop to exact bit equality across odd shapes, strided views, and
// parallelism 1/2/8 — the kernel layer's determinism contract.
func TestMulAddIntoBitExact(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {17, 31, 13}, {64, 64, 64},
		{65, 127, 33}, {100, 100, 100}, {129, 65, 97}, {40, 256, 40},
	}
	for _, sh := range shapes {
		for _, contig := range []bool{true, false} {
			var a, b, c0 *Matrix
			if contig {
				a = Random(sh.m, sh.k, uint64(sh.m*1000+sh.k))
				b = Random(sh.k, sh.n, uint64(sh.k*1000+sh.n))
				c0 = Random(sh.m, sh.n, 7)
			} else {
				a = strided(sh.m, sh.k, uint64(sh.m*1000+sh.k))
				b = strided(sh.k, sh.n, uint64(sh.k*1000+sh.n))
				c0 = strided(sh.m, sh.n, 7)
			}
			want := c0.Clone()
			naiveMulAdd(want, a, b)
			for _, par := range []int{1, 2, 8} {
				got := c0.Clone()
				withParallelism(par, func() { MulAddInto(got, a, b) })
				if !bitEqual(got, want) {
					t.Errorf("%dx%dx%d contig=%v par=%d: MulAddInto differs from naive loop (max diff %g)",
						sh.m, sh.k, sh.n, contig, par, maxDiff(got, want))
				}
			}
		}
	}
}

// TestMulAddIntoPropagatesNaNInf: 0×NaN and 0×Inf must poison the output —
// the seed kernel's av == 0 early-skip silently dropped them.
func TestMulAddIntoPropagatesNaNInf(t *testing.T) {
	a := FromSlice(2, 2, []float64{0, 0, 1, 0})
	b := FromSlice(2, 2, []float64{math.NaN(), math.Inf(1), 4, 5})
	c := New(2, 2)
	MulAddInto(c, a, b)
	// Row 0 of a is all zeros: 0·NaN + 0·4 = NaN, 0·Inf + 0·5 = NaN.
	if !math.IsNaN(c.At(0, 0)) || !math.IsNaN(c.At(0, 1)) {
		t.Errorf("zero row × NaN/Inf column = (%g, %g), want NaN", c.At(0, 0), c.At(0, 1))
	}
	// Row 1: 1·NaN + 0·4 = NaN, 1·Inf + 0·5 = Inf.
	if !math.IsNaN(c.At(1, 0)) || !math.IsInf(c.At(1, 1), 1) {
		t.Errorf("second row = (%g, %g), want (NaN, +Inf)", c.At(1, 0), c.At(1, 1))
	}
	// Inf must survive when nothing cancels it: 1·Inf + 0·3 = Inf.
	c2 := New(1, 1)
	MulAddInto(c2, FromSlice(1, 2, []float64{1, 0}), FromSlice(2, 1, []float64{math.Inf(1), 3}))
	if !math.IsInf(c2.At(0, 0), 1) {
		t.Errorf("1·Inf + 0·3 = %g, want +Inf", c2.At(0, 0))
	}
}

// TestSyrkLowerSubDeterministic checks SYRK parallel-vs-serial bit equality
// and its agreement with a scalar reference.
func TestSyrkLowerSubDeterministic(t *testing.T) {
	for _, n := range []int{5, 33, 100, 129} {
		k := n/2 + 3
		l := Random(n, k, uint64(n))
		c0 := Random(n, n, uint64(n)+1)
		// Scalar reference on the lower triangle.
		want := c0.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := want.At(i, j)
				for p := 0; p < k; p++ {
					s -= l.At(i, p) * l.At(j, p)
				}
				want.Set(i, j, s)
			}
		}
		for _, par := range []int{1, 2, 8} {
			got := c0.Clone()
			withParallelism(par, func() { SyrkLowerSub(got, l) })
			if !bitEqual(got, want) {
				t.Errorf("n=%d par=%d: SyrkLowerSub differs from scalar reference", n, par)
			}
		}
	}
}

// TestSolveXLTDeterministic checks the parallel TRSM path against the
// serial one to the bit.
func TestSolveXLTDeterministic(t *testing.T) {
	for _, rows := range []int{3, 64, 150} {
		n := 40
		spd := SymmetricPositiveDefinite(n, 5)
		l := spd.Clone()
		if err := Cholesky(l); err != nil {
			t.Fatal(err)
		}
		b0 := Random(rows, n, uint64(rows))
		var want *Matrix
		withParallelism(1, func() {
			want = b0.Clone()
			SolveXLT(want, l)
		})
		for _, par := range []int{2, 8} {
			got := b0.Clone()
			withParallelism(par, func() { SolveXLT(got, l) })
			if !bitEqual(got, want) {
				t.Errorf("rows=%d par=%d: SolveXLT parallel differs from serial", rows, par)
			}
		}
		// And it actually solves X·Lᵀ = B.
		rec := Mul(want, l.Transpose())
		if !Equal(rec, b0, 1e-8) {
			t.Errorf("rows=%d: X·Lᵀ ≠ B (max diff %g)", rows, maxDiff(rec, b0))
		}
	}
}

// TestMulVecIntoDeterministic checks the parallel row-band MulVec path.
func TestMulVecIntoDeterministic(t *testing.T) {
	for _, n := range []int{10, 300} {
		a := Random(n, n, uint64(n))
		x := RandomVec(n, 9)
		var want []float64
		withParallelism(1, func() { want = MulVec(a, x) })
		for _, par := range []int{2, 8} {
			var got []float64
			withParallelism(par, func() { got = MulVec(a, x) })
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d par=%d: MulVec differs at %d: %v vs %v", n, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCholeskyBlockedParallelBitIdentical: the full blocked factorization —
// panel, TRSM, SYRK — must give identical bits at any worker count.
func TestCholeskyBlockedParallelBitIdentical(t *testing.T) {
	a := SymmetricPositiveDefinite(150, 17)
	var want *Matrix
	withParallelism(1, func() {
		want = a.Clone()
		if err := CholeskyBlocked(want, 32, nil); err != nil {
			t.Fatal(err)
		}
	})
	for _, par := range []int{2, 8} {
		got := a.Clone()
		var err error
		withParallelism(par, func() { err = CholeskyBlocked(got, 32, nil) })
		if err != nil {
			t.Fatal(err)
		}
		if !bitEqual(got, want) {
			t.Errorf("par=%d: CholeskyBlocked differs from serial (max diff %g)", par, maxDiff(got, want))
		}
	}
}

// TestLUBlockedMatchesUnblocked: the blocked fast path must agree with the
// column-at-a-time reference to factorization roundoff and yield the same
// pivot sequence on well-separated data, and must be bit-identical to
// itself across worker counts.
func TestLUBlockedMatchesUnblocked(t *testing.T) {
	for _, n := range []int{96, 150, 224} {
		a := DiagonallyDominant(n, uint64(n)+55)
		ref := a.Clone()
		refPiv, err := luUnblocked(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want *Matrix
		var wantPiv []int
		withParallelism(1, func() {
			want = a.Clone()
			wantPiv, err = LU(want, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantPiv {
			if wantPiv[i] != refPiv[i] {
				t.Fatalf("n=%d: pivot %d differs: %d vs %d", n, i, wantPiv[i], refPiv[i])
			}
		}
		// Factors agree to roundoff and solve the same system.
		xTrue := RandomVec(n, 3)
		b := MulVec(a, xTrue)
		x := SolveLU(want, wantPiv, b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d: blocked LU solve x[%d] = %v, want %v", n, i, x[i], xTrue[i])
			}
		}
		for _, par := range []int{2, 8} {
			got := a.Clone()
			withParallelism(par, func() { _, err = LU(got, nil) })
			if err != nil {
				t.Fatal(err)
			}
			if !bitEqual(got, want) {
				t.Errorf("n=%d par=%d: blocked LU differs from serial", n, par)
			}
		}
	}
}

// TestLUBlockedSingular: the blocked path must still detect singularity.
func TestLUBlockedSingular(t *testing.T) {
	n := 120
	a := DiagonallyDominant(n, 8)
	// Make row 100 a copy of row 99: singular, discovered mid-panel.
	copy(a.Row(100), a.Row(99))
	if _, err := LU(a, nil); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// TestSetParallelism exercises the knob contract.
func TestSetParallelism(t *testing.T) {
	old := SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism() = %d, want 3", got)
	}
	if prev := SetParallelism(0); prev != 3 {
		t.Errorf("SetParallelism returned %d, want 3", prev)
	}
	if Parallelism() < 1 {
		t.Errorf("reset Parallelism() = %d, want >= 1", Parallelism())
	}
	SetParallelism(old)
}

// TestRowBands sanity-checks the deterministic partitioners.
func TestRowBands(t *testing.T) {
	for _, tc := range []struct{ rows, workers int }{{1, 8}, {7, 2}, {100, 3}, {64, 64}} {
		bands := rowBands(tc.rows, tc.workers)
		if len(bands) > tc.workers+1 {
			t.Errorf("rowBands(%d,%d): %d bands", tc.rows, tc.workers, len(bands))
		}
		next := 0
		for _, b := range bands {
			if b.lo != next || b.hi <= b.lo {
				t.Fatalf("rowBands(%d,%d) = %v: not a disjoint cover", tc.rows, tc.workers, bands)
			}
			next = b.hi
		}
		if next != tc.rows {
			t.Errorf("rowBands(%d,%d) covers %d rows", tc.rows, tc.workers, next)
		}
	}
	for _, tc := range []struct{ n, workers int }{{1, 4}, {50, 3}, {129, 8}} {
		bands := triBands(tc.n, tc.workers)
		next := 0
		for _, b := range bands {
			if b.lo != next || b.hi <= b.lo {
				t.Fatalf("triBands(%d,%d) = %v: not a disjoint cover", tc.n, tc.workers, bands)
			}
			next = b.hi
		}
		if next != tc.n {
			t.Errorf("triBands(%d,%d) covers %d rows", tc.n, tc.workers, next)
		}
	}
}
