package mat

import (
	"fmt"
	"sync"
)

// Fused online-ABFT GEMM (FT-BLAS / FT-GEMM direction).
//
// MulAddIntoFused computes the same c += a·b as MulAddInto — bit-identical,
// same determinism contract — while deriving the checksums an online ABFT
// verifier needs from data the GEMM already has in registers or L1:
//
//   - operand checksums (eᵀA, B·e) fall out of the packing copy, so
//     encoding/verification of the inputs costs no extra traversal;
//   - row/column checksums of the *output* are folded into the micro-kernel
//     at the final k-block: each finished C value is added to its row and
//     column accumulator right at writeback, while it is still a register.
//
// A two-pass verifier re-reads all of C (O(n²) memory traffic) after the
// multiply; the fused path replaces that with ~2 register adds per element
// inside the kernel and O(n) traffic at the comparison. Corruption of a C
// element written by an *earlier* panel is still witnessed: the kernel seeds
// its accumulators from the stored (possibly corrupted) value, so the fault
// propagates into the final value the checksum folds in.
//
// Only c's bits are parallelism-invariant. The checksum sums are reduced in
// deterministic ascending-band order, so they are reproducible for a fixed
// worker count, but their rounding association varies with the band split —
// consumers must compare them against encoded checksums with a tolerance,
// never for bit equality.

// FusedSums receives the checksums MulAddIntoFused accumulates. Each slice
// is optional (nil skips that accumulation); non-nil slices must have the
// exact length noted and are overwritten.
type FusedSums struct {
	RowSums []float64 // len a.Rows: Σ_j of the final c[i][j]
	ColSums []float64 // len c.Cols: Σ_i of the final c[i][j]
	ASums   []float64 // len a.Cols: Σ_i a[i][k] (eᵀA, the column checksums)
	BSums   []float64 // len a.Cols: Σ_j b[k][j] (B·e, the row checksums)
}

// fusedAcc is the per-band view of the accumulators: rs/cs are indexed in
// the band's local row space / the full column space, asum/bsum in k space.
// Nil slices skip that accumulation.
type fusedAcc struct {
	rs, cs     []float64
	asum, bsum []float64
}

// MulAddIntoFused computes c += a×b with checksum accumulation fused into
// the packing and micro-kernel passes. c's result is bit-identical to
// MulAddInto (and to the naive scalar loop) at any blocking, tile shape, or
// parallelism.
func MulAddIntoFused(c, a, b *Matrix, fs *FusedSums) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddIntoFused shape mismatch: c %dx%d += a %dx%d × b %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m, kdim, n := a.Rows, a.Cols, c.Cols
	if fs == nil {
		mulAdd(c, a, b, 1, false)
		return
	}
	if (fs.RowSums == nil) != (fs.ColSums == nil) {
		panic("mat: MulAddIntoFused RowSums and ColSums must be set together")
	}
	checkSumLen(fs.RowSums, m, "RowSums")
	checkSumLen(fs.ColSums, n, "ColSums")
	checkSumLen(fs.ASums, kdim, "ASums")
	checkSumLen(fs.BSums, kdim, "BSums")
	clear(fs.RowSums)
	clear(fs.ColSums)
	clear(fs.ASums)
	clear(fs.BSums)
	if m == 0 || n == 0 || kdim == 0 {
		return
	}
	workers := workersFor(m, 2*m*n*kdim)
	if fs.RowSums == nil || fs.ColSums == nil {
		// Partial-sum callers still need the operand checksums wired through
		// the pack pass, but without output folding the plain kernels run.
		workers = 1
	}
	if workers <= 1 {
		gemmSerialFused(c, a, b, &fusedAcc{fs.RowSums, fs.ColSums, fs.ASums, fs.BSums})
		return
	}

	// Parallel: each row band folds into disjoint RowSums rows directly and
	// into pooled per-band ColSums/ASums partials; bands are then reduced in
	// ascending order, so the sums depend only on (shape, workers). BSums
	// covers all of b in every band, so only band 0 derives it.
	bands := rowBands(m, workers)
	colParts := make([]*[]float64, len(bands))
	aParts := make([]*[]float64, len(bands))
	var wg sync.WaitGroup
	for idx, bd := range bands {
		colParts[idx] = getZeroBuf(n)
		if fs.ASums != nil {
			aParts[idx] = getZeroBuf(kdim)
		}
		wg.Add(1)
		go func(idx, lo, hi int) {
			defer wg.Done()
			fa := &fusedAcc{rs: fs.RowSums[lo:hi], cs: *colParts[idx]}
			if aParts[idx] != nil {
				fa.asum = *aParts[idx]
			}
			if idx == 0 {
				fa.bsum = fs.BSums
			}
			gemmSerialFused(c.View(lo, 0, hi-lo, n), a.View(lo, 0, hi-lo, kdim), b, fa)
		}(idx, bd.lo, bd.hi)
	}
	wg.Wait()
	for idx := range bands {
		for j, v := range *colParts[idx] {
			fs.ColSums[j] += v
		}
		putBuf(colParts[idx])
		if aParts[idx] != nil {
			for k, v := range *aParts[idx] {
				fs.ASums[k] += v
			}
			putBuf(aParts[idx])
		}
	}
}

func checkSumLen(s []float64, want int, name string) {
	if s != nil && len(s) != want {
		panic(fmt.Sprintf("mat: MulAddIntoFused %s length %d, want %d", name, len(s), want))
	}
}

// gemmSerialFused dispatches one row band to the packed or simple fused
// path by the same size threshold as gemmSerial, so the c bits stay
// identical to the unfused dispatch.
func gemmSerialFused(c, a, b *Matrix, fa *fusedAcc) {
	if 2*a.Rows*a.Cols*c.Cols < packMinFlops {
		gemmSimpleFused(c, a, b, fa)
		return
	}
	gemmPackedTile(c, a, b, 1, false, fusedTileM, fa)
}

// fusedTileM is the micro-tile height of the fused packed path. 2×4 wins on
// this register file (see the mr comment in kernel.go); the 4×4 variant
// stays dispatchable for BenchmarkGEMMTile and the property tests.
const fusedTileM = mr

// gemmSimpleFused handles sub-threshold problems: the plain blocked loop
// (identical bits) followed by one post-pass over the small operands to
// derive the sums. Below packMinFlops everything is L1-resident, so the
// extra pass costs what the fused kernels would have.
func gemmSimpleFused(c, a, b *Matrix, fa *fusedAcc) {
	gemmSimple(c, a, b, 1, false)
	if fa.rs != nil && fa.cs != nil {
		for i := 0; i < c.Rows; i++ {
			row := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			s := fa.rs[i]
			for j, v := range row {
				s += v
				fa.cs[j] += v
			}
			fa.rs[i] = s
		}
	}
	if fa.asum != nil {
		for i := 0; i < a.Rows; i++ {
			row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			for k, v := range row {
				fa.asum[k] += v
			}
		}
	}
	if fa.bsum != nil {
		for k := 0; k < b.Rows; k++ {
			row := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			s := 0.0
			for _, v := range row {
				s += v
			}
			fa.bsum[k] += s
		}
	}
}

// kern2x4Fused is kern2x4 plus output-checksum folding. The fold runs as a
// separate pass over the just-stored 2x4 tile (L1-hot, 8 loads + 14 adds)
// rather than inside the k loop: keeping rs/cs out of the hot loop leaves
// the micro-kernel's register allocation untouched, so the fused main loop
// is byte-for-byte the plain kernel.
func kern2x4Fused(kb int, ap, bp []float64, cd []float64, ldc int, rs, cs []float64) {
	kern2x4(kb, ap, bp, cd, ldc)
	foldTile(cd, ldc, mr, nr, rs, cs)
}

// kern4x4Fused is kern4x4 plus the same post-store checksum folding.
func kern4x4Fused(kb int, ap, bp []float64, cd []float64, ldc int, rs, cs []float64) {
	kern4x4(kb, ap, bp, cd, ldc)
	foldTile(cd, ldc, 4, nr, rs, cs)
}

// kernEdgeFused handles fringe tiles on the final k-block: the kernEdge
// accumulation followed by the same fold over the partial tile.
func kernEdgeFused(kb, rows, cols int, ap, bp, cd []float64, ldc, tm int, rs, cs []float64) {
	kernEdge(kb, rows, cols, ap, bp, cd, ldc, tm)
	foldTile(cd, ldc, rows, cols, rs, cs)
}

// foldTile adds a stored rows x cols tile's final values into the running
// row and column checksum accumulators.
func foldTile(cd []float64, ldc, rows, cols int, rs, cs []float64) {
	for r := 0; r < rows; r++ {
		row := cd[r*ldc : r*ldc+cols]
		sum := 0.0
		for c, v := range row {
			sum += v
			cs[c] += v
		}
		rs[r] += sum
	}
}
