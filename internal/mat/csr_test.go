package mat

import (
	"math"
	"testing"
)

func TestPoisson2DStructure(t *testing.T) {
	a := Poisson2D(3, 3)
	if a.N != 9 {
		t.Fatalf("N = %d", a.N)
	}
	// Interior point (1,1) = row 4 has 5 entries; corner row 0 has 3.
	if got := a.RowPtr[5] - a.RowPtr[4]; got != 5 {
		t.Errorf("interior row nnz = %d", got)
	}
	if got := a.RowPtr[1] - a.RowPtr[0]; got != 3 {
		t.Errorf("corner row nnz = %d", got)
	}
	d := a.Diag()
	for i, v := range d {
		if v != 4 {
			t.Errorf("diag[%d] = %v", i, v)
		}
	}
}

func TestPoisson2DSymmetricSPD(t *testing.T) {
	a := Poisson2D(4, 5).Dense()
	if !Equal(a, a.Transpose(), 0) {
		t.Error("Poisson2D not symmetric")
	}
	l := a.Clone()
	if err := Cholesky(l); err != nil {
		t.Errorf("Poisson2D not SPD: %v", err)
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	a := Poisson2D(5, 4)
	d := a.Dense()
	x := RandomVec(a.N, 3)
	y := make([]float64, a.N)
	a.MulVecInto(y, x)
	want := MulVec(d, x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestCSRRowDot(t *testing.T) {
	a := Poisson2D(4, 4)
	x := RandomVec(a.N, 9)
	y := make([]float64, a.N)
	a.MulVecInto(y, x)
	for i := 0; i < a.N; i++ {
		if math.Abs(a.RowDot(i, x)-y[i]) > 1e-12 {
			t.Fatalf("RowDot(%d) mismatch", i)
		}
	}
}

func TestCSRMulVecShapePanics(t *testing.T) {
	a := Poisson2D(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.MulVecInto(make([]float64, 4), make([]float64, 3))
}

func TestCSRColumnsSorted(t *testing.T) {
	a := Poisson2D(6, 7)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] <= a.Col[k-1] {
				t.Fatalf("row %d columns unsorted", i)
			}
		}
	}
}
