package mat

import (
	"math"
	"testing"
)

// refMulAdd32 is the scalar float32 reference: ascending-k accumulation per
// element — the bit contract every dispatch path must match.
func refMulAdd32(c, a, b *Matrix32) {
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			s := c.At(i, j)
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(i, j, s)
		}
	}
}

func bitsEqual32(t *testing.T, got, want *Matrix32, label string) {
	t.Helper()
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			if math.Float32bits(got.At(i, j)) != math.Float32bits(want.At(i, j)) {
				t.Fatalf("%s: bits differ at (%d,%d): got %v want %v", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestMulAddInto32BitExact: the packed/banded float32 path must be
// bit-identical to the scalar loop at every shape and worker count —
// including shapes that exercise fringe tiles and the ML-inference
// tall-skinny/batched-small geometries.
func TestMulAddInto32BitExact(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{5, 7, 3}, {16, 16, 16}, {64, 64, 64}, {65, 33, 67},
		{130, 97, 51}, {256, 64, 8}, {8, 256, 96},
	}
	for _, sh := range shapes {
		a := Random32(sh.m, sh.k, 11)
		b := Random32(sh.k, sh.n, 22)
		want := Random32(sh.m, sh.n, 33)
		refMulAdd32(want, a, b)
		for _, w := range []int{1, 2, 3, 7} {
			old := SetParallelism(w)
			got := Random32(sh.m, sh.n, 33)
			MulAddInto32(got, a, b)
			SetParallelism(old)
			bitsEqual32(t, got, want, "MulAddInto32")
		}
	}
}

// TestMulAddIntoFused32 checks that the fused path (a) leaves c bit-identical
// to the plain path and (b) derives sums and statistics that match direct
// float64 computation within float64 rounding.
func TestMulAddIntoFused32(t *testing.T) {
	for _, w := range []int{1, 3} {
		old := SetParallelism(w)
		m, k, n := 96, 80, 72
		a := Random32(m, k, 5)
		b := Random32(k, n, 6)
		want := New32(m, n)
		refMulAdd32(want, a, b)

		c := New32(m, n)
		fs := &FusedSums32{
			RowSums: make([]float64, m), ColSums: make([]float64, n),
			AbsRowSums: make([]float64, m), AbsColSums: make([]float64, n),
			ASums: make([]float64, k), BSums: make([]float64, k),
		}
		MulAddIntoFused32(c, a, b, fs)
		SetParallelism(old)
		bitsEqual32(t, c, want, "MulAddIntoFused32")

		tol := 1e-9
		for i := 0; i < m; i++ {
			rs, ars := 0.0, 0.0
			for j := 0; j < n; j++ {
				v := float64(c.At(i, j))
				rs += v
				ars += math.Abs(v)
			}
			if math.Abs(rs-fs.RowSums[i]) > tol*(1+math.Abs(rs)) {
				t.Fatalf("workers=%d RowSums[%d] = %g, want %g", w, i, fs.RowSums[i], rs)
			}
			if math.Abs(ars-fs.AbsRowSums[i]) > tol*(1+ars) {
				t.Fatalf("workers=%d AbsRowSums[%d] = %g, want %g", w, i, fs.AbsRowSums[i], ars)
			}
		}
		for j := 0; j < n; j++ {
			cs := 0.0
			for i := 0; i < m; i++ {
				cs += float64(c.At(i, j))
			}
			if math.Abs(cs-fs.ColSums[j]) > tol*(1+math.Abs(cs)) {
				t.Fatalf("workers=%d ColSums[%d] = %g, want %g", w, j, fs.ColSums[j], cs)
			}
		}
		for p := 0; p < k; p++ {
			as, bs := 0.0, 0.0
			for i := 0; i < m; i++ {
				as += float64(a.At(i, p))
			}
			for j := 0; j < n; j++ {
				bs += float64(b.At(p, j))
			}
			if math.Abs(as-fs.ASums[p]) > tol {
				t.Fatalf("workers=%d ASums[%d] = %g, want %g", w, p, fs.ASums[p], as)
			}
			if math.Abs(bs-fs.BSums[p]) > tol {
				t.Fatalf("workers=%d BSums[%d] = %g, want %g", w, p, fs.BSums[p], bs)
			}
		}
		if fs.AMoments.Count != m*k || fs.BMoments.Count != k*n {
			t.Fatalf("workers=%d moment counts %d/%d, want %d/%d",
				w, fs.AMoments.Count, fs.BMoments.Count, m*k, k*n)
		}
		if fs.AMoments.MaxAbs <= 0 || fs.AMoments.MaxAbs >= 1 || fs.BMoments.RMS() <= 0 {
			t.Fatalf("workers=%d implausible moments: %+v %+v", w, fs.AMoments, fs.BMoments)
		}
	}
}

// TestRandom32MatchesRandom: the float32 generator is elementwise the
// float64 stream, so seeds are interchangeable across precisions.
func TestRandom32MatchesRandom(t *testing.T) {
	m64 := Random(7, 9, 42)
	m32 := Random32(7, 9, 42)
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			if m32.At(i, j) != float32(m64.At(i, j)) {
				t.Fatalf("Random32(%d,%d) = %v, want float32(%v)", i, j, m32.At(i, j), m64.At(i, j))
			}
		}
	}
}
