package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha·x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x *= alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// NormInf returns the max-absolute-value norm of x.
func NormInf(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Sub computes z = x − y into a new slice.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Sub length mismatch %d vs %d", len(x), len(y)))
	}
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Ones returns a length-n vector of ones (the checksum vector e).
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// RandomVec returns a deterministic pseudo-random vector in [0,1).
func RandomVec(n int, seed uint64) []float64 {
	return Random(1, n, seed).Data
}
