package core

import (
	"math"

	"coopabft/internal/ecc"
	"coopabft/internal/faultmodel"
	"coopabft/internal/osmodel"
)

// Adaptive ECC policy — the paper's closing direction ("the necessity and
// potential benefits of using a co-design and adaptive policy to direct
// end-to-end, overall resilience"). The policy watches the node's observed
// error rate and compares the implied MTTF against the Equation (7)/(8)
// threshold: while errors are rare it keeps ABFT data under relaxed ECC
// (ARE); if the observed MTTF drops below the threshold — a sick DIMM, an
// aging node — it strengthens protection via assign_ecc, and relaxes again
// when the storm passes. §4: "for those cases with high error rate, we
// should employ strong ECC throughout all data, even if we have ABFT
// protection".

// AdaptiveConfig parameterizes the policy.
type AdaptiveConfig struct {
	// Relaxed and Strong are the two protection levels the policy switches
	// between for ABFT data.
	Relaxed, Strong ecc.Scheme
	// RecoverySeconds is t_c, the cost of one ABFT recovery.
	RecoverySeconds float64
	// TauStrong/TauRelaxed are the §4 performance-impact ratios.
	TauStrong, TauRelaxed float64
	// WindowSeconds is the observation interval between decisions.
	WindowSeconds float64
	// HysteresisFactor > 1 prevents flapping: relaxing again requires the
	// observed MTTF to exceed the threshold by this factor.
	HysteresisFactor float64
}

// DefaultAdaptiveConfig returns a policy switching between no ECC and
// SECDED on ABFT data.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Relaxed:          ecc.None,
		Strong:           ecc.SECDED,
		RecoverySeconds:  0.5,
		TauStrong:        0.12,
		TauRelaxed:       0.01,
		WindowSeconds:    10,
		HysteresisFactor: 4,
	}
}

// AdaptivePolicy drives assign_ecc from observed error rates.
type AdaptivePolicy struct {
	cfg       AdaptiveConfig
	os        *osmodel.OS
	allocs    []*osmodel.Allocation
	threshold float64 // MTTF threshold (seconds), Equation (7)

	strongMode bool
	// Switches counts protection-level transitions.
	Switches int
	// lastErrors is the interrupt count at the previous observation.
	lastErrors uint64
}

// NewAdaptivePolicy builds a policy over the OS managing the given
// relaxed-ECC allocations (they must come from MallocECC).
func NewAdaptivePolicy(cfg AdaptiveConfig, os *osmodel.OS, allocs []*osmodel.Allocation) *AdaptivePolicy {
	return &AdaptivePolicy{
		cfg:       cfg,
		os:        os,
		allocs:    allocs,
		threshold: faultmodel.MTTFThresholdPerf(cfg.RecoverySeconds, cfg.TauStrong, cfg.TauRelaxed),
	}
}

// Threshold returns the Equation (7) MTTF threshold the policy enforces.
func (p *AdaptivePolicy) Threshold() float64 { return p.threshold }

// StrongMode reports whether ABFT data is currently under strong ECC.
func (p *AdaptivePolicy) StrongMode() bool { return p.strongMode }

// ObservedMTTF converts an error count over the window into an MTTF
// estimate (∞ for a clean window).
func (p *AdaptivePolicy) ObservedMTTF(errorsInWindow uint64) float64 {
	if errorsInWindow == 0 {
		return math.Inf(1)
	}
	return p.cfg.WindowSeconds / float64(errorsInWindow)
}

// Observe ingests the cumulative uncorrectable-error count (e.g.
// osmodel.Stats().Interrupts) at a window boundary and switches protection
// if the threshold test demands it. It returns true when a switch happened.
func (p *AdaptivePolicy) Observe(cumulativeErrors uint64) bool {
	window := cumulativeErrors - p.lastErrors
	p.lastErrors = cumulativeErrors
	mttf := p.ObservedMTTF(window)

	switch {
	case !p.strongMode && mttf < p.threshold:
		p.setScheme(p.cfg.Strong)
		p.strongMode = true
		p.Switches++
		return true
	case p.strongMode && mttf > p.threshold*p.cfg.HysteresisFactor:
		p.setScheme(p.cfg.Relaxed)
		p.strongMode = false
		p.Switches++
		return true
	}
	return false
}

func (p *AdaptivePolicy) setScheme(s ecc.Scheme) {
	for _, a := range p.allocs {
		p.os.AssignECC(a, s)
	}
}
