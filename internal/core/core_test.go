package core

import (
	"testing"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/ecc"
	"coopabft/internal/machine"
	"coopabft/internal/trace"
)

func toTarget(data []float64, reg trace.Region) bifit.Target {
	return bifit.Target{Data: data, Reg: reg}
}

func TestStrategySchemes(t *testing.T) {
	cases := []struct {
		s            Strategy
		def, abft    ecc.Scheme
		partial      bool
		label        string
		abftRegionOK bool
	}{
		{NoECC, ecc.None, ecc.None, false, "No_ECC", true},
		{WholeChipkill, ecc.Chipkill, ecc.Chipkill, false, "W_CK", true},
		{PartialChipkillNoECC, ecc.Chipkill, ecc.None, true, "P_CK+No_ECC", true},
		{WholeSECDED, ecc.SECDED, ecc.SECDED, false, "W_SD", true},
		{PartialSECDEDNoECC, ecc.SECDED, ecc.None, true, "P_SD+No_ECC", true},
		{PartialChipkillSECDED, ecc.Chipkill, ecc.SECDED, true, "P_CK+P_SD", true},
	}
	if len(Strategies) != 6 {
		t.Fatalf("Strategies = %d entries", len(Strategies))
	}
	for _, c := range cases {
		if c.s.DefaultScheme() != c.def || c.s.ABFTScheme() != c.abft {
			t.Errorf("%v: schemes (%v, %v)", c.s, c.s.DefaultScheme(), c.s.ABFTScheme())
		}
		if c.s.Partial() != c.partial {
			t.Errorf("%v: partial = %v", c.s, c.s.Partial())
		}
		if c.s.String() != c.label {
			t.Errorf("%v: label %q", int(c.s), c.s.String())
		}
	}
}

func TestRuntimeAllocatesABFTUnderRelaxedECC(t *testing.T) {
	rt := NewRuntime(machine.ScaledConfig(32), PartialChipkillNoECC, 1)
	env := rt.Env()
	reg := env.Alloc("matrix", 1024, true)
	other := env.Alloc("scratch", 1024, false)

	pa, err := rt.M.OS.Translate(reg.Base)
	if err != nil {
		t.Fatal(err)
	}
	if s := rt.M.Ctl.SchemeFor(pa); s != ecc.None {
		t.Errorf("ABFT data scheme = %v, want none", s)
	}
	po, _ := rt.M.OS.Translate(other.Base)
	if s := rt.M.Ctl.SchemeFor(po); s != ecc.Chipkill {
		t.Errorf("other data scheme = %v, want chipkill", s)
	}
	if !reg.ABFT || other.ABFT {
		t.Error("ABFT tags wrong")
	}
}

func TestRuntimeKernelConstructorsShareRegisters(t *testing.T) {
	// FT-CG allocates 6+ ABFT vectors; merging must keep them within the 8
	// available ECC registers.
	rt := NewRuntime(machine.ScaledConfig(32), PartialChipkillSECDED, 2)
	cg := rt.NewCG(12, 12, 3)
	if cg == nil {
		t.Fatal("nil kernel")
	}
	if got := len(rt.M.Ctl.Regions()); got == 0 || got > 3 {
		t.Errorf("CG used %d ECC registers; merging failed", got)
	}
	r, ok := cg.VecFor("r")
	if !ok {
		t.Fatal("no r vector")
	}
	pa, _ := rt.M.OS.Translate(r.Reg.Base)
	if s := rt.M.Ctl.SchemeFor(pa); s != ecc.SECDED {
		t.Errorf("r scheme = %v", s)
	}
}

func TestEndToEndCoordinationDGEMM(t *testing.T) {
	// The full ARE loop on a real kernel: relaxed SECDED on ABFT data, a
	// double-bit error injected mid-structure, the demand read raising an
	// interrupt, the OS exposing the address, and notified verification
	// repairing the element.
	rt := NewRuntime(machine.ScaledConfig(32), PartialChipkillSECDED, 4)
	d, err := rt.NewDGEMM(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	d.Mode = abft.NotifiedVerify
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}

	// Inject an uncorrectable (for SECDED) pattern into Cf and read it.
	rt.M.FlushCaches() // DRAM errors are only observed on a fetch
	tgt := d.Cf
	idx := 7*tgt.Stride + 11
	if err := rt.Injector.FlipBits(toTarget(tgt.Data, tgt.Reg), idx, []int{10, 20}); err != nil {
		t.Fatal(err)
	}
	// Drive a demand read through the machine to trigger detection.
	rt.M.Memory().Touch(tgt.Addr(7, 11), 8, false)
	if rt.M.OS.Panicked() {
		t.Fatal("panicked on ABFT data")
	}
	if len(rt.M.OS.PeekCorruptions()) != 1 {
		t.Fatalf("corruption not exposed")
	}
	// ABFT consumes the notification.
	if err := d.VerifyNotified(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	if rt.M.Ctl.FaultyLines() != 0 {
		t.Error("fault residue not cleared after ABFT repair")
	}
	res := rt.Finish()
	if res.Interrupts != 1 || res.OS.ExposedToABFT != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestSingleBitFixedByHardwareNotABFT(t *testing.T) {
	// Under SECDED, a single-bit error is repaired by the MC; ABFT never
	// hears about it and application data is restored.
	rt := NewRuntime(machine.ScaledConfig(32), WholeSECDED, 6)
	d, err := rt.NewDGEMM(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	rt.M.FlushCaches()
	want := d.Cf.At(3, 3)
	idx := 3*d.Cf.Stride + 3
	if err := rt.Injector.FlipBits(toTarget(d.Cf.Data, d.Cf.Reg), idx, []int{40}); err != nil {
		t.Fatal(err)
	}
	rt.M.Memory().Touch(d.Cf.Addr(3, 3), 8, false)
	if d.Cf.At(3, 3) != want {
		t.Error("hardware correction not written back to app data")
	}
	res := rt.Finish()
	if res.ECC.CorrectedErrors != 1 || res.Interrupts != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestPanicOnUnprotectedCorruption(t *testing.T) {
	rt := NewRuntime(machine.ScaledConfig(32), WholeSECDED, 8)
	a := rt.M.OS.Malloc("plain", 4096)
	tgt := toTarget(make([]float64, 512), a.Region)
	rt.Injector.Register(tgt)
	if err := rt.Injector.FlipBits(tgt, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	rt.M.Memory().Touch(a.VBase(), 8, false)
	if !rt.M.OS.Panicked() {
		t.Error("unprotected uncorrectable error must panic")
	}
}

func TestExtensionKernelsEndToEnd(t *testing.T) {
	// FT-LU and FT-QR through the full coordination stack: relaxed SECDED,
	// an uncorrectable injection, interrupt, notified repair.
	rt := NewRuntime(machine.ScaledConfig(32), PartialChipkillSECDED, 11)
	lu := rt.NewLU(32, 5)
	lu.Mode = abft.NotifiedVerify
	if err := lu.Run(); err != nil {
		t.Fatal(err)
	}
	rt.M.FlushCaches()
	if err := rt.Injector.FlipBits(toTarget(lu.Af.Data, lu.Af.Reg), 5*lu.Af.Stride+7, []int{9, 33}); err != nil {
		t.Fatal(err)
	}
	rt.M.Memory().Touch(lu.Af.Addr(5, 7), 8, false)
	if len(rt.M.OS.PeekCorruptions()) != 1 {
		t.Fatal("LU corruption not exposed")
	}
	if err := lu.VerifyNotified(); err != nil {
		t.Fatal(err)
	}
	if rt.M.Ctl.FaultyLines() != 0 {
		t.Error("LU repair left fault residue")
	}

	rt2 := NewRuntime(machine.ScaledConfig(32), PartialChipkillSECDED, 13)
	qr := rt2.NewQR(24, 7)
	qr.Mode = abft.NotifiedVerify
	if err := qr.Run(); err != nil {
		t.Fatal(err)
	}
	rt2.M.FlushCaches()
	if err := rt2.Injector.FlipBits(toTarget(qr.Vf.Data, qr.Vf.Reg), 10*qr.Vf.Stride+3, []int{12, 40}); err != nil {
		t.Fatal(err)
	}
	rt2.M.Memory().Touch(qr.Vf.Addr(10, 3), 8, false)
	if len(rt2.M.OS.PeekCorruptions()) != 1 {
		t.Fatal("QR corruption not exposed")
	}
	if err := qr.VerifyNotified(); err != nil {
		t.Fatal(err)
	}
	if rt2.M.Ctl.FaultyLines() != 0 {
		t.Error("QR repair left fault residue")
	}
}
