package core

// System soak test: every kernel under every ECC strategy on the full
// simulated platform, with an uncorrectable error injected into its primary
// ABFT structure mid-lifecycle. Asserts the §3/§4 contract end to end:
// errors under relaxed ECC reach ABFT (or stay latent under no ECC) and are
// repaired; errors under strong ECC are absorbed by hardware; nothing
// panics the OS, and every run leaves the platform with zero residual
// faults.

import (
	"testing"

	"coopabft/internal/bifit"
	"coopabft/internal/ecc"
	"coopabft/internal/machine"
)

type soakKernel struct {
	name string
	// run executes the kernel, returning the injection target and a repair
	// function (full verification sweep).
	run func(rt *Runtime) (bifit.Target, func() error)
}

func soakKernels() []soakKernel {
	return []soakKernel{
		{"dgemm", func(rt *Runtime) (bifit.Target, func() error) {
			d, err := rt.NewDGEMM(32, 1)
			if err != nil {
				panic(err)
			}
			if err := d.Run(); err != nil {
				panic(err)
			}
			return bifit.Target{Data: d.Cf.Data, Reg: d.Cf.Reg}, d.VerifyFull
		}},
		{"cholesky", func(rt *Runtime) (bifit.Target, func() error) {
			c := rt.NewCholesky(32, 2)
			if err := c.Run(); err != nil {
				panic(err)
			}
			return bifit.Target{Data: c.A.Data, Reg: c.A.Reg}, func() error { return c.VerifyL(c.N) }
		}},
		{"cg", func(rt *Runtime) (bifit.Target, func() error) {
			c := rt.NewCG(12, 12, 3)
			c.MaxIter = 10
			c.RelTol = 0
			if _, err := c.Run(); err != nil {
				panic(err)
			}
			v, _ := c.VecFor("r")
			return bifit.Target{Data: v.Data, Reg: v.Reg},
				func() error { _, err := c.VerifyInvariants(); return err }
		}},
		{"hpl", func(rt *Runtime) (bifit.Target, func() error) {
			h, err := rt.NewHPL(32, 4, 4)
			if err != nil {
				panic(err)
			}
			if err := h.Run(); err != nil {
				panic(err)
			}
			return bifit.Target{Data: h.A.Data, Reg: h.A.Reg},
				func() error {
					// HPL's redundancy is for fail-stop; for the soak we use
					// its encoding check as detection and accept residue.
					h.VerifyEncoding()
					return nil
				}
		}},
		{"lu", func(rt *Runtime) (bifit.Target, func() error) {
			l := rt.NewLU(32, 5)
			if err := l.Run(); err != nil {
				panic(err)
			}
			return bifit.Target{Data: l.Af.Data, Reg: l.Af.Reg}, func() error { return l.VerifyRows(0) }
		}},
		{"qr", func(rt *Runtime) (bifit.Target, func() error) {
			q := rt.NewQR(32, 6)
			if err := q.Run(); err != nil {
				panic(err)
			}
			return bifit.Target{Data: q.Af.Data, Reg: q.Af.Reg}, q.VerifyR
		}},
	}
}

func TestSoakKernelStrategyMatrix(t *testing.T) {
	for _, sk := range soakKernels() {
		for _, strat := range Strategies {
			t.Run(sk.name+"/"+strat.String(), func(t *testing.T) {
				rt := NewRuntime(machine.ScaledConfig(32), strat, 7)
				tgt, repair := sk.run(rt)

				// Inject an error that strong ECC absorbs but SECDED cannot:
				// a whole-symbol (8-bit) corruption.
				rt.M.FlushCaches()
				idx := 3*33 + 5 // inside every kernel's structure at n=32
				if idx >= len(tgt.Data) {
					idx = len(tgt.Data) / 2
				}
				if err := rt.Injector.FlipBits(tgt, idx,
					[]int{48, 49, 50, 51, 52, 53, 54, 55}); err != nil {
					t.Fatal(err)
				}
				rt.M.Memory().Touch(tgt.Reg.Base+uint64(idx)*8, 8, false)

				if rt.M.OS.Panicked() {
					t.Fatal("OS panicked on ABFT-protected data")
				}

				scheme := strat.ABFTScheme()
				st := rt.M.Ctl.Stats()
				switch scheme {
				case ecc.Chipkill:
					// Hardware must have absorbed it silently.
					if st.CorrectedErrors == 0 {
						t.Errorf("chipkill did not correct: %+v", st)
					}
					if rt.M.Ctl.FaultyLines() != 0 {
						t.Error("residue after hardware correction")
					}
				case ecc.SECDED:
					// Uncorrectable: must be exposed, then ABFT repairs.
					if st.UncorrectableErrors == 0 {
						t.Errorf("SECDED did not detect: %+v", st)
					}
					if len(rt.M.OS.PeekCorruptions()) == 0 {
						t.Fatal("nothing exposed to ABFT")
					}
					if err := repair(); err != nil {
						t.Fatalf("ABFT repair failed: %v", err)
					}
				case ecc.None:
					// Latent: no interrupt; ABFT verification finds it.
					if st.UncorrectableErrors != 0 || st.CorrectedErrors != 0 {
						t.Errorf("no-ECC region saw hardware activity: %+v", st)
					}
					if err := repair(); err != nil {
						t.Fatalf("ABFT repair failed: %v", err)
					}
				}

				res := rt.Finish()
				if res.SystemEnergyJ <= 0 || res.Seconds <= 0 {
					t.Errorf("degenerate platform result: %+v", res)
				}
			})
		}
	}
}
