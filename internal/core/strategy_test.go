package core

import (
	"errors"
	"testing"

	"coopabft/internal/ecc"
)

// TestStrategyTable pins the §5.1 strategy table: label, default scheme,
// ABFT-data scheme and partial-relaxation flag for all six configurations,
// plus the out-of-range fallback paths.
func TestStrategyTable(t *testing.T) {
	cases := []struct {
		s       Strategy
		label   string
		def     ecc.Scheme
		abft    ecc.Scheme
		partial bool
	}{
		{NoECC, "No_ECC", ecc.None, ecc.None, false},
		{WholeChipkill, "W_CK", ecc.Chipkill, ecc.Chipkill, false},
		{PartialChipkillNoECC, "P_CK+No_ECC", ecc.Chipkill, ecc.None, true},
		{WholeSECDED, "W_SD", ecc.SECDED, ecc.SECDED, false},
		{PartialSECDEDNoECC, "P_SD+No_ECC", ecc.SECDED, ecc.None, true},
		{PartialChipkillSECDED, "P_CK+P_SD", ecc.Chipkill, ecc.SECDED, true},
	}
	for _, c := range cases {
		t.Run(c.label, func(t *testing.T) {
			if got := c.s.String(); got != c.label {
				t.Errorf("String() = %q, want %q", got, c.label)
			}
			if got := c.s.DefaultScheme(); got != c.def {
				t.Errorf("DefaultScheme() = %v, want %v", got, c.def)
			}
			if got := c.s.ABFTScheme(); got != c.abft {
				t.Errorf("ABFTScheme() = %v, want %v", got, c.abft)
			}
			if got := c.s.Partial(); got != c.partial {
				t.Errorf("Partial() = %v, want %v", got, c.partial)
			}
		})
	}
	if len(Strategies) != len(cases) {
		t.Errorf("Strategies has %d entries, want %d", len(Strategies), len(cases))
	}
}

// TestStrategyInvalid covers the out-of-range Strategy value: every method
// must degrade to a safe answer instead of panicking.
func TestStrategyInvalid(t *testing.T) {
	bad := Strategy(99)
	if got := bad.String(); got != "Strategy(?)" {
		t.Errorf("String() = %q, want Strategy(?)", got)
	}
	// An unknown strategy must not silently weaken non-ABFT data: the
	// default-scheme fallback is SECDED, and ABFT data gets no relaxation
	// benefit (ecc.None is the conservative "algorithmic protection only").
	if got := bad.DefaultScheme(); got != ecc.SECDED {
		t.Errorf("DefaultScheme() = %v, want %v", got, ecc.SECDED)
	}
	if got := bad.ABFTScheme(); got != ecc.None {
		t.Errorf("ABFTScheme() = %v, want %v", got, ecc.None)
	}
	if bad.Partial() {
		t.Error("Partial() = true for invalid strategy, want false")
	}
}

// TestParseStrategy round-trips every label through ParseStrategy, checks
// case-insensitivity, and pins the typed unknown-strategy error.
func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseStrategy("w_ck"); err != nil || got != WholeChipkill {
		t.Errorf("ParseStrategy(w_ck) = %v, %v; want WholeChipkill", got, err)
	}
	if _, err := ParseStrategy("quantum"); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("ParseStrategy(quantum) err = %v, want ErrUnknownStrategy", err)
	}
}
