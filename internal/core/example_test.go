package core_test

import (
	"fmt"

	"coopabft/internal/core"
	"coopabft/internal/machine"
)

// The complete cooperative loop in a dozen lines: allocate ABFT data under
// relaxed ECC, run, and read the platform's verdict.
func ExampleRuntime() {
	rt := core.NewRuntime(machine.ScaledConfig(32), core.PartialChipkillSECDED, 1)

	d, _ := rt.NewDGEMM(48, 7) // Ac, Br, Cf allocated via malloc_ecc (SECDED)
	if err := d.Run(); err != nil {
		panic(err)
	}
	res := rt.Finish()

	fmt.Printf("default scheme: %v, ABFT scheme: %v\n",
		rt.Strategy.DefaultScheme(), rt.Strategy.ABFTScheme())
	fmt.Printf("ECC registers used: %d (structures merged)\n", len(rt.M.Ctl.Regions()))
	fmt.Printf("panics: %d\n", res.OS.Panics)
	// Output:
	// default scheme: chipkill, ABFT scheme: secded
	// ECC registers used: 1 (structures merged)
	// panics: 0
}
