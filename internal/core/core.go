// Package core is the paper's contribution: the cooperative software-
// hardware runtime that coordinates ABFT with main-memory ECC (ARE — ABFT
// plus Relaxed ECC). It binds the ABFT kernels of package abft to the
// simulated platform of package machine:
//
//   - ABFT-protected data structures are allocated with the OS's malloc_ecc
//     under the strategy's relaxed scheme, programming the memory
//     controller's ECC region registers (adjacent structures share
//     registers);
//   - everything else stays under the node's strong default scheme;
//   - ECC-uncorrectable-error interrupts flow through the OS into the
//     kernels' notified verification, which repairs exactly the corrupted
//     elements instead of recomputing checksums (§3.2.2);
//   - hardware corrections are written back into application storage and
//     residual fault state is cleared when ABFT overwrites corrupted data.
package core

import (
	"errors"
	"fmt"
	"strings"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/ecc"
	"coopabft/internal/machine"
	"coopabft/internal/trace"
)

// Strategy is one of the six ECC configurations evaluated in §5.1.
type Strategy int

const (
	// NoECC runs everything unprotected (test 1, the baseline).
	NoECC Strategy = iota
	// WholeChipkill (W_CK) applies chipkill to all data (test 2).
	WholeChipkill
	// PartialChipkillNoECC (P_CK+No_ECC) removes ECC from ABFT-protected
	// data and keeps chipkill elsewhere (test 3).
	PartialChipkillNoECC
	// WholeSECDED (W_SD) applies SECDED to all data (test 4).
	WholeSECDED
	// PartialSECDEDNoECC (P_SD+No_ECC) removes ECC from ABFT-protected data
	// and keeps SECDED elsewhere (test 5).
	PartialSECDEDNoECC
	// PartialChipkillSECDED (P_CK+P_SD) keeps chipkill on unprotected data
	// and drops ABFT-protected data to SECDED (test 6).
	PartialChipkillSECDED
)

// Strategies lists all six in the paper's order.
var Strategies = []Strategy{
	NoECC, WholeChipkill, PartialChipkillNoECC,
	WholeSECDED, PartialSECDEDNoECC, PartialChipkillSECDED,
}

// String returns the paper's label.
func (s Strategy) String() string {
	switch s {
	case NoECC:
		return "No_ECC"
	case WholeChipkill:
		return "W_CK"
	case PartialChipkillNoECC:
		return "P_CK+No_ECC"
	case WholeSECDED:
		return "W_SD"
	case PartialSECDEDNoECC:
		return "P_SD+No_ECC"
	case PartialChipkillSECDED:
		return "P_CK+P_SD"
	default:
		return "Strategy(?)"
	}
}

// ErrUnknownStrategy reports a strategy label ParseStrategy cannot map.
var ErrUnknownStrategy = errors.New("core: unknown ECC strategy")

// ParseStrategy maps a paper label (case-insensitively) back to its
// Strategy — the inverse of String. Command-line flags and per-request
// strategy selection in the serving path both go through here.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownStrategy, name, Strategies)
}

// DefaultScheme returns the protection for data outside ABFT coverage.
func (s Strategy) DefaultScheme() ecc.Scheme {
	switch s {
	case NoECC:
		return ecc.None
	case WholeChipkill, PartialChipkillNoECC, PartialChipkillSECDED:
		return ecc.Chipkill
	default:
		return ecc.SECDED
	}
}

// ABFTScheme returns the protection for ABFT-protected data.
func (s Strategy) ABFTScheme() ecc.Scheme {
	switch s {
	case NoECC, PartialChipkillNoECC, PartialSECDEDNoECC:
		return ecc.None
	case WholeChipkill:
		return ecc.Chipkill
	case PartialChipkillSECDED, WholeSECDED:
		return ecc.SECDED
	default:
		return ecc.None
	}
}

// Partial reports whether the strategy relaxes ECC on ABFT data relative to
// the rest of the node.
func (s Strategy) Partial() bool {
	return s == PartialChipkillNoECC || s == PartialSECDEDNoECC || s == PartialChipkillSECDED
}

// Runtime couples one simulated node with the coordination machinery.
type Runtime struct {
	Strategy Strategy
	M        *machine.Machine
	Injector *bifit.Injector
}

// NewRuntime builds a node configured for the strategy.
func NewRuntime(cfg machine.Config, s Strategy, seed int64) *Runtime {
	cfg.DefaultScheme = s.DefaultScheme()
	m := machine.New(cfg)
	rt := &Runtime{Strategy: s, M: m, Injector: bifit.New(m.OS, seed)}
	rt.Injector.InstallRepairHandler(m.Ctl)
	return rt
}

// Env returns the kernel environment implementing the §3.2 coordination:
// ABFT allocations go through malloc_ecc with the relaxed scheme, the
// notifier drains the OS's shared corruption list, and ABFT repairs clear
// residual fault state.
func (rt *Runtime) Env() abft.Env {
	return abft.Env{
		Mem:   rt.M.Memory(),
		Alloc: rt.alloc,
		Notify: func() []abft.Notification {
			pend := rt.M.OS.PendingCorruptions()
			out := make([]abft.Notification, len(pend))
			for i, p := range pend {
				out[i] = abft.Notification{VirtAddr: p.VirtAddr}
			}
			return out
		},
		OnCorrected: func(addr uint64) {
			// ABFT rewrote the data: drop the line's residual pattern.
			_ = rt.M.OS.ClearFaultAt(addr)
		},
	}
}

func (rt *Runtime) alloc(name string, n int, abftProtected bool) trace.Region {
	size := uint64(n) * 8
	if abftProtected {
		a, err := rt.M.OS.MallocECC(name, size, rt.Strategy.ABFTScheme(), true)
		if err == nil {
			return a.Region
		}
		// Out of ECC registers: fall back to default protection (the data
		// stays ABFT-protected algorithmically, just not relaxed).
	}
	return rt.M.OS.Malloc(name, size).Region
}

// RegisterTarget makes a kernel data structure injectable and repairable.
func (rt *Runtime) RegisterTarget(data []float64, reg trace.Region) {
	rt.Injector.Register(bifit.Target{Data: data, Reg: reg})
}

// NewDGEMM builds an FT-DGEMM wired to this runtime (targets registered).
func (rt *Runtime) NewDGEMM(n int, seed uint64) (*abft.DGEMM, error) {
	d, err := abft.NewDGEMM(rt.Env(), n, seed)
	if err != nil {
		return nil, err
	}
	rt.RegisterTarget(d.Ac.Data, d.Ac.Reg)
	rt.RegisterTarget(d.Br.Data, d.Br.Reg)
	rt.RegisterTarget(d.Cf.Data, d.Cf.Reg)
	return d, nil
}

// NewCholesky builds an FT-Cholesky wired to this runtime.
func (rt *Runtime) NewCholesky(n int, seed uint64) *abft.Cholesky {
	c := abft.NewCholesky(rt.Env(), n, seed)
	rt.RegisterTarget(c.A.Data, c.A.Reg)
	return c
}

// NewCG builds an FT-CG wired to this runtime.
func (rt *Runtime) NewCG(nx, ny int, seed uint64) *abft.CG {
	c := abft.NewCG(rt.Env(), nx, ny, seed)
	for _, name := range []string{"r", "p", "q", "x", "b", "z"} {
		if v, ok := c.VecFor(name); ok {
			rt.RegisterTarget(v.Data, v.Reg)
		}
	}
	return c
}

// NewLU builds a fail-continue FT-LU wired to this runtime.
func (rt *Runtime) NewLU(n int, seed uint64) *abft.LU {
	l := abft.NewLU(rt.Env(), n, seed)
	rt.RegisterTarget(l.Af.Data, l.Af.Reg)
	return l
}

// NewQR builds a fail-continue FT-QR wired to this runtime.
func (rt *Runtime) NewQR(n int, seed uint64) *abft.QR {
	q := abft.NewQR(rt.Env(), n, seed)
	rt.RegisterTarget(q.Af.Data, q.Af.Reg)
	rt.RegisterTarget(q.Vf.Data, q.Vf.Reg)
	return q
}

// NewHPL builds an FT-HPL wired to this runtime.
func (rt *Runtime) NewHPL(n, nb int, seed uint64) (*abft.HPL, error) {
	h, err := abft.NewHPL(rt.Env(), n, nb, seed)
	if err != nil {
		return nil, err
	}
	rt.RegisterTarget(h.A.Data, h.A.Reg)
	rt.RegisterTarget(h.T.Data, h.T.Reg)
	return h, nil
}

// Finish closes out the run and returns platform metrics.
func (rt *Runtime) Finish() machine.Result { return rt.M.Finish() }
