package core

import (
	"math"
	"testing"

	"coopabft/internal/ecc"
	"coopabft/internal/machine"
	"coopabft/internal/osmodel"
)

func adaptiveRig(t *testing.T) (*Runtime, *AdaptivePolicy) {
	t.Helper()
	rt := NewRuntime(machine.ScaledConfig(32), PartialChipkillNoECC, 3)
	a, err := rt.M.OS.MallocECC("abft-data", 4096, ecc.None, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAdaptiveConfig()
	cfg.WindowSeconds = 10
	p := NewAdaptivePolicy(cfg, rt.M.OS, []*osmodel.Allocation{a})
	return rt, p
}

func TestAdaptiveThresholdMatchesEquation7(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	p := NewAdaptivePolicy(cfg, nil, nil)
	want := cfg.RecoverySeconds * (1 + cfg.TauRelaxed) / (cfg.TauStrong - cfg.TauRelaxed)
	if math.Abs(p.Threshold()-want) > 1e-12 {
		t.Errorf("threshold = %v, want %v", p.Threshold(), want)
	}
}

func TestAdaptiveStrengthensUnderErrorStorm(t *testing.T) {
	rt, p := adaptiveRig(t)
	paBase, _ := rt.M.OS.Translate(0x1000) // the allocation's first page
	_ = paBase

	if p.StrongMode() {
		t.Fatal("policy must start relaxed")
	}
	// Clean window: stays relaxed.
	if p.Observe(0) {
		t.Error("switched on a clean window")
	}
	// Error storm: threshold ≈ 4.6 s; window 10 s with 5 errors → MTTF 2 s
	// < threshold → strengthen.
	if !p.Observe(5) {
		t.Fatal("did not strengthen under storm")
	}
	if !p.StrongMode() {
		t.Error("mode flag wrong")
	}
	// The MC now runs the strong scheme on the ABFT range.
	pa, _ := rt.M.OS.Translate(0x1000)
	if s := rt.M.Ctl.SchemeFor(pa); s != ecc.SECDED {
		t.Errorf("scheme after strengthen = %v", s)
	}
}

func TestAdaptiveHysteresisPreventsFlapping(t *testing.T) {
	_, p := adaptiveRig(t)
	p.Observe(5) // strengthen (MTTF 2 s < 4.6 s)
	// A window with 1 error: MTTF 10 s > threshold 4.6 s but below the
	// hysteresis bar (4.6 × 4 = 18.3 s): stay strong.
	if p.Observe(6) {
		t.Error("relaxed inside the hysteresis band")
	}
	if !p.StrongMode() {
		t.Error("flapped out of strong mode")
	}
	// A clean window (MTTF ∞): relax.
	if !p.Observe(6) {
		t.Error("did not relax after a clean window")
	}
	if p.StrongMode() {
		t.Error("mode flag wrong after relax")
	}
	if p.Switches != 2 {
		t.Errorf("switches = %d", p.Switches)
	}
}

func TestAdaptiveEndToEndWithInjection(t *testing.T) {
	// Drive the policy from real interrupts: inject uncorrectable errors,
	// read through them, observe, and confirm the protection escalates.
	rt := NewRuntime(machine.ScaledConfig(32), PartialChipkillSECDED, 9)
	d, err := rt.NewDGEMM(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	alloc, ok := rt.M.OS.AllocationAt(d.Cf.Reg.Base)
	if !ok {
		t.Fatal("no allocation for Cf")
	}
	cfg := DefaultAdaptiveConfig()
	cfg.Relaxed, cfg.Strong = ecc.SECDED, ecc.Chipkill
	pol := NewAdaptivePolicy(cfg, rt.M.OS, []*osmodel.Allocation{alloc})

	rt.M.FlushCaches()
	// Three uncorrectable (double-bit) errors on distinct lines.
	tgt := toTarget(d.Cf.Data, d.Cf.Reg)
	for i := 0; i < 3; i++ {
		idx := (i + 2) * d.Cf.Stride
		if err := rt.Injector.FlipBits(tgt, idx, []int{3, 17}); err != nil {
			t.Fatal(err)
		}
		rt.M.Memory().Touch(d.Cf.Reg.Base+uint64(idx)*8, 8, false)
	}
	st := rt.M.OS.Stats()
	if st.Interrupts != 3 {
		t.Fatalf("interrupts = %d", st.Interrupts)
	}
	if !pol.Observe(st.Interrupts) {
		t.Fatal("policy ignored the storm")
	}
	pa, _ := rt.M.OS.Translate(d.Cf.Reg.Base)
	if s := rt.M.Ctl.SchemeFor(pa); s != ecc.Chipkill {
		t.Errorf("scheme = %v, want chipkill after escalation", s)
	}
}
