// Package machine assembles the full evaluation platform of Figure 4 —
// the McSim + DRAMSim2 substitute: an in-order core, the L1/L2 hierarchy,
// the ECC-aware memory controller, the DRAM timing/power model, and the OS
// model, all driven by the instrumentation probes the ABFT kernels emit.
package machine

import (
	"fmt"

	"coopabft/internal/cache"
	"coopabft/internal/cpu"
	"coopabft/internal/dram"
	"coopabft/internal/ecc"
	"coopabft/internal/memctrl"
	"coopabft/internal/osmodel"
	"coopabft/internal/trace"
)

// InterruptHandlerCycles is the modeled cost of taking the ECC-error
// interrupt and running the §3.2.1 handler (read error registers, derive
// addresses, publish to the shared list).
const InterruptHandlerCycles = 20000

// Config assembles the component configurations.
type Config struct {
	CPU  cpu.Config
	L1   cache.Config
	L2   cache.Config
	DRAM dram.Config
	// DefaultScheme is the strong protection covering all memory not
	// explicitly relaxed through malloc_ecc.
	DefaultScheme ecc.Scheme
}

// DefaultConfig reproduces Table 3 verbatim.
func DefaultConfig() Config {
	return Config{
		CPU:           cpu.DefaultConfig(),
		L1:            cache.L1Default(),
		L2:            cache.L2Default(),
		DRAM:          dram.DefaultConfig(),
		DefaultScheme: ecc.Chipkill,
	}
}

// ScaledConfig shrinks the node to a 1/divisor "slice" so that scaled-down
// matrices (the harness default; the paper simulates 3000²) keep the
// paper's ratios: the L2 keeps the working-set-to-LLC ratio, and the
// always-on power terms (processor idle/max power, DRAM background power)
// shrink with it so static energy does not drown the dynamic deltas the
// experiments measure. Per-access DRAM energies are untouched — they are
// per-chip physics, not capacity.
func ScaledConfig(divisor int) Config {
	c := DefaultConfig()
	WithL2Divisor(divisor)(&c)
	return c
}

// Machine is one simulated node.
type Machine struct {
	cfg  Config
	Core *cpu.Core
	Hier *cache.Hierarchy
	Ctl  *memctrl.Controller
	OS   *osmodel.OS

	mem        *trace.Memory
	llcABFT    uint64 // Table 4: LLC misses to ABFT-protected blocks
	llcOther   uint64
	tlb        map[uint64]uint64 // tiny page-translation cache
	curVaddr   uint64            // vaddr of the access currently in flight
	interrupts uint64
}

// New builds a machine.
func New(cfg Config) *Machine {
	m := &Machine{
		cfg:  cfg,
		Core: cpu.New(cfg.CPU),
		tlb:  make(map[uint64]uint64),
	}
	mem := dram.New(cfg.DRAM)
	m.Ctl = memctrl.New(mem, cfg.DefaultScheme)
	m.OS = osmodel.New(m.Ctl)

	// Wrap the OS interrupt handler to charge the handler cost to the core.
	osHandler := m.Ctl.OnUncorr
	m.Ctl.OnUncorr = func(rec memctrl.ErrorRecord) {
		m.interrupts++
		m.Core.Advance(InterruptHandlerCycles)
		osHandler(rec)
	}

	// TLB shootdown on page remaps (retirement/migration).
	m.OS.OnRemap = func(vpage uint64) { delete(m.tlb, vpage) }

	m.Hier = cache.NewHierarchy(cfg.L1, cfg.L2, m.handleMiss)
	m.mem = &trace.Memory{Probe: m.probe, OnOps: m.ops}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Memory returns the instrumentation endpoint kernels write their accesses
// and operation counts to.
func (m *Machine) Memory() *trace.Memory { return m.mem }

// ops advances compute time.
func (m *Machine) ops(n int) { m.Core.Compute(uint64(n)) }

// probe walks one data access through translation and the cache hierarchy.
func (m *Machine) probe(vaddr uint64, write bool) {
	paddr, ok := m.translate(vaddr)
	if !ok {
		// Accesses outside OS allocations (kernel scratch that was not
		// allocated through the OS model) are ignored by the platform.
		return
	}
	m.curVaddr = vaddr
	switch m.Hier.Access(paddr, write) {
	case cache.LevelL1:
		m.Core.L1Hit()
	case cache.LevelL2:
		m.Core.L2Hit()
	case cache.LevelMemory:
		// Timing handled in handleMiss via the MSHR window.
	}
}

// handleMiss services the L2 miss stream at the memory controller.
func (m *Machine) handleMiss(ev cache.MissEvent) {
	if ev.Demand {
		if m.OS.Space.IsABFT(m.curVaddr) {
			m.llcABFT++
		} else {
			m.llcOther++
		}
		issue := m.Core.BeginMiss()
		res := m.Ctl.Access(issue, ev.Addr, false, true)
		m.Core.CompleteMiss(res.Complete)
		return
	}
	// Writebacks occupy banks and consume energy off the critical path.
	m.Ctl.Access(m.Core.Now(), ev.Addr, ev.Write, false)
}

func (m *Machine) translate(vaddr uint64) (uint64, bool) {
	page := vaddr / osmodel.PageSize
	if frame, ok := m.tlb[page]; ok {
		return frame + vaddr%osmodel.PageSize, true
	}
	paddr, err := m.OS.Translate(vaddr)
	if err != nil {
		return 0, false
	}
	m.tlb[page] = paddr - vaddr%osmodel.PageSize
	return paddr, true
}

// FlushCaches writes back all dirty lines and empties the hierarchy, so
// subsequent reads observe memory contents (used between program phases and
// by fault-injection campaigns: a DRAM error is only visible on a fetch).
func (m *Machine) FlushCaches() {
	m.Hier.Flush()
}

// Result summarizes a finished run.
type Result struct {
	Cycles       uint64
	Seconds      float64
	Instructions uint64
	IPC          float64

	ProcEnergyJ   float64
	MemDynamicJ   float64
	MemStandbyJ   float64
	SystemEnergyJ float64

	LLCMissABFT  uint64
	LLCMissOther uint64
	RowHitRate   float64
	Interrupts   uint64
	ECC          memctrl.Stats
	OS           osmodel.Stats
}

// MemEnergyJ returns total memory energy.
func (r Result) MemEnergyJ() float64 { return r.MemDynamicJ + r.MemStandbyJ }

// Finish drains outstanding misses, charges standby energy, and returns the
// run summary. The machine can keep running afterwards, but energy totals
// are only consistent at Finish points.
func (m *Machine) Finish() Result {
	m.Core.Drain()
	st := m.Ctl.Mem.Finalize(m.Core.Now(), m.cfg.CPU.ClockHz)
	r := Result{
		Cycles:       m.Core.Now(),
		Seconds:      m.Core.Seconds(),
		Instructions: m.Core.Instructions(),
		IPC:          m.Core.IPC(),
		ProcEnergyJ:  m.Core.EnergyJ(),
		MemDynamicJ:  st.DynamicEnergyJ + m.Ctl.Stats().ECCEnergyJ,
		MemStandbyJ:  st.StandbyEnergyJ,
		LLCMissABFT:  m.llcABFT,
		LLCMissOther: m.llcOther,
		RowHitRate:   st.RowHitRate(),
		Interrupts:   m.interrupts,
		ECC:          m.Ctl.Stats(),
		OS:           m.OS.Stats(),
	}
	r.SystemEnergyJ = r.ProcEnergyJ + r.MemDynamicJ + r.MemStandbyJ
	return r
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("machine.Result{%.3g s, IPC %.3f, proc %.3g J, mem %.3g J (dyn %.3g), llc abft/other %d/%d}",
		r.Seconds, r.IPC, r.ProcEnergyJ, r.MemEnergyJ(), r.MemDynamicJ, r.LLCMissABFT, r.LLCMissOther)
}
