package machine

import (
	"errors"
	"fmt"

	"coopabft/internal/cache"
	"coopabft/internal/ecc"
)

// ErrBadConfig reports an invalid machine configuration; NewConfig wraps
// it with the specific violation.
var ErrBadConfig = errors.New("machine: bad config")

// Option adjusts a Config under construction.
type Option func(*Config)

// WithL2Divisor shrinks the node to a 1/divisor slice, exactly as
// ScaledConfig does (L2 capacity plus the always-on power terms).
func WithL2Divisor(divisor int) Option {
	return func(c *Config) {
		if divisor <= 1 {
			return
		}
		c.L2.SizeBytes /= divisor
		if c.L2.SizeBytes < c.L2.Ways*cache.LineBytes {
			c.L2.SizeBytes = c.L2.Ways * cache.LineBytes
		}
		d := float64(divisor)
		c.CPU.MaxPowerW /= d
		c.CPU.IdlePowerW /= d
		c.DRAM.BackgroundPowerW /= d
	}
}

// WithDefaultScheme sets the strong protection covering all memory not
// explicitly relaxed through malloc_ecc.
func WithDefaultScheme(s ecc.Scheme) Option {
	return func(c *Config) { c.DefaultScheme = s }
}

// WithClockHz sets the core clock.
func WithClockHz(hz float64) Option {
	return func(c *Config) { c.CPU.ClockHz = hz }
}

// WithL2Size sets the L2 capacity in bytes directly.
func WithL2Size(bytes int) Option {
	return func(c *Config) { c.L2.SizeBytes = bytes }
}

// NewConfig builds a validated Config: Table 3 defaults, then the given
// options, then an invariant check. Misconfigurations return an error
// wrapping ErrBadConfig instead of a machine that panics mid-simulation.
func NewConfig(opts ...Option) (Config, error) {
	c := DefaultConfig()
	for _, o := range opts {
		o(&c)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the structural invariants the simulator relies on.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
	}
	if c.CPU.ClockHz <= 0 {
		return fail("clock %v Hz must be positive", c.CPU.ClockHz)
	}
	for _, l := range []struct {
		name string
		cfg  cache.Config
	}{{"L1", c.L1}, {"L2", c.L2}} {
		if l.cfg.Ways <= 0 {
			return fail("%s ways %d must be positive", l.name, l.cfg.Ways)
		}
		min := l.cfg.Ways * cache.LineBytes
		if l.cfg.SizeBytes < min || l.cfg.SizeBytes%min != 0 {
			return fail("%s size %dB must be a positive multiple of ways×line (%dB)",
				l.name, l.cfg.SizeBytes, min)
		}
	}
	if c.DRAM.Channels <= 0 || c.DRAM.DIMMsPerChan <= 0 || c.DRAM.RanksPerDIMM <= 0 || c.DRAM.BanksPerRank <= 0 {
		return fail("DRAM topology must have positive channels/DIMMs/ranks/banks")
	}
	return nil
}
