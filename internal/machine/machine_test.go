package machine

import (
	"testing"

	"coopabft/internal/ecc"
	"coopabft/internal/memctrl"
	"coopabft/internal/osmodel"
)

// touchRange streams sequential read accesses over an allocation.
func touchRange(m *Machine, a *osmodel.Allocation, bytes uint64) {
	mem := m.Memory()
	for off := uint64(0); off < bytes; off += 64 {
		mem.Touch(a.VBase()+off, 8, false)
	}
}

func TestComputeOnlyRun(t *testing.T) {
	m := New(ScaledConfig(32))
	m.Memory().Ops(1000)
	r := m.Finish()
	if r.Cycles == 0 || r.Instructions != 1000 {
		t.Errorf("result = %+v", r)
	}
	if r.ProcEnergyJ <= 0 || r.MemStandbyJ <= 0 {
		t.Error("energies not accounted")
	}
	if r.MemDynamicJ != 0 {
		t.Error("dynamic memory energy without accesses")
	}
	if r.SystemEnergyJ != r.ProcEnergyJ+r.MemDynamicJ+r.MemStandbyJ {
		t.Error("system energy inconsistent")
	}
}

func TestUnmappedAccessIgnored(t *testing.T) {
	m := New(ScaledConfig(32))
	m.Memory().Touch(0xdeadbeef000, 8, false) // never allocated
	r := m.Finish()
	if r.LLCMissABFT+r.LLCMissOther != 0 {
		t.Error("unmapped access reached memory")
	}
}

func TestMissClassificationTable4Style(t *testing.T) {
	m2 := New(ScaledConfig(32))
	a, err := m2.OS.MallocECC("abft-data", 1<<20, ecc.None, true)
	if err != nil {
		t.Fatal(err)
	}
	b := m2.OS.Malloc("other", 1<<20)
	touchRange(m2, a, 1<<20) // 16384 lines
	touchRange(m2, b, 1<<18) // 4096 lines
	r := m2.Finish()
	if r.LLCMissABFT == 0 || r.LLCMissOther == 0 {
		t.Fatalf("classification empty: %+v", r)
	}
	ratio := float64(r.LLCMissABFT) / float64(r.LLCMissOther)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("miss ratio = %v, want ≈4", ratio)
	}
}

func TestCacheFiltersRepeatedAccesses(t *testing.T) {
	m := New(ScaledConfig(32))
	a := m.OS.Malloc("x", 1<<16)
	touchRange(m, a, 1<<16)
	first := m.Ctl.Mem.Stats().Reads
	touchRange(m, a, 1<<16) // 64KB fits in the scaled 256KB L2
	second := m.Ctl.Mem.Stats().Reads - first
	if second != 0 {
		t.Errorf("second sweep caused %d DRAM reads, want 0 (L2-resident)", second)
	}
}

func TestChipkillSlowerAndHotterThanNone(t *testing.T) {
	run := func(scheme ecc.Scheme) Result {
		cfg := ScaledConfig(32)
		cfg.DefaultScheme = scheme
		m := New(cfg)
		a := m.OS.Malloc("big", 8<<20)
		// Stream over 8MB, far beyond the scaled L2 → heavy DRAM traffic.
		touchRange(m, a, 8<<20)
		return m.Finish()
	}
	ck := run(ecc.Chipkill)
	nn := run(ecc.None)
	if ck.MemDynamicJ <= nn.MemDynamicJ {
		t.Errorf("chipkill dynamic %g <= none %g", ck.MemDynamicJ, nn.MemDynamicJ)
	}
	if ck.IPC > nn.IPC {
		t.Errorf("chipkill IPC %v > none %v", ck.IPC, nn.IPC)
	}
}

func TestInterruptFlowsToOS(t *testing.T) {
	m := New(ScaledConfig(32))
	a, err := m.OS.MallocECC("abft", 1<<16, ecc.SECDED, true)
	if err != nil {
		t.Fatal(err)
	}
	// Plant an uncorrectable (double-bit) error and read through it.
	var p memctrl.Pattern
	p.Data[0] = 0x03
	if err := m.OS.InjectAt(a.VBase(), p); err != nil {
		t.Fatal(err)
	}
	before := m.Core.Now()
	touchRange(m, a, 64)
	r := m.Finish()
	if r.Interrupts != 1 {
		t.Fatalf("interrupts = %d", r.Interrupts)
	}
	if r.OS.ExposedToABFT != 1 {
		t.Errorf("OS stats = %+v", r.OS)
	}
	if m.Core.Now() < before+InterruptHandlerCycles {
		t.Error("interrupt handler cost not charged")
	}
	pend := m.OS.PendingCorruptions()
	if len(pend) != 1 || pend[0].Alloc != a {
		t.Errorf("pending = %+v", pend)
	}
}

func TestScaledConfigShrinksL2(t *testing.T) {
	full := DefaultConfig()
	s := ScaledConfig(32)
	if s.L2.SizeBytes != full.L2.SizeBytes/32 {
		t.Errorf("scaled L2 = %d", s.L2.SizeBytes)
	}
	// Extreme divisor clamps to a valid geometry.
	tiny := ScaledConfig(1 << 30)
	if tiny.L2.SizeBytes < tiny.L2.Ways*64 {
		t.Error("scaled config below minimum geometry")
	}
}

func TestMemEnergyAccumulatesECCLogic(t *testing.T) {
	cfg := ScaledConfig(32)
	cfg.DefaultScheme = ecc.SECDED
	m := New(cfg)
	a := m.OS.Malloc("d", 1<<16)
	var p memctrl.Pattern
	p.Data[0] = 0x01 // single bit: corrected by hardware
	m.OS.InjectAt(a.VBase(), p)
	touchRange(m, a, 64)
	r := m.Finish()
	if r.ECC.CorrectedErrors != 1 {
		t.Fatalf("ecc stats = %+v", r.ECC)
	}
	if r.MemDynamicJ <= 0 {
		t.Error("dynamic energy missing")
	}
}

func TestTLBShootdownOnPageRetirement(t *testing.T) {
	m := New(ScaledConfig(32))
	a, err := m.OS.MallocECC("abft", 4096, ecc.SECDED, true)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the TLB.
	touchRange(m, a, 64)
	// Drive enough uncorrectable errors through one page to retire it.
	for i := 0; i < osmodel.DefaultRetireThreshold; i++ {
		var p memctrl.Pattern
		p.Data[0] = 0x03
		if err := m.OS.InjectAt(a.VBase()+uint64(i)*64, p); err != nil {
			t.Fatal(err)
		}
		m.FlushCaches()
		m.Memory().Touch(a.VBase()+uint64(i)*64, 8, false)
		m.OS.ClearFaultAt(a.VBase() + uint64(i)*64)
	}
	if m.OS.Stats().PagesRetired != 1 {
		t.Fatalf("pages retired = %d", m.OS.Stats().PagesRetired)
	}
	// A fresh uncorrectable error on the SAME virtual page must be observed
	// through the NEW frame — stale TLB entries would miss it.
	var p memctrl.Pattern
	p.Data[0] = 0x03
	if err := m.OS.InjectAt(a.VBase()+512, p); err != nil {
		t.Fatal(err)
	}
	m.FlushCaches()
	before := m.Ctl.Stats().UncorrectableErrors
	m.Memory().Touch(a.VBase()+512, 8, false)
	if m.Ctl.Stats().UncorrectableErrors != before+1 {
		t.Error("post-retirement error not observed: stale TLB translation")
	}
}
