// Package resilience measures, by Monte-Carlo fault injection against the
// real codecs, the empirical frequencies behind §4's error-scenario
// classification: for each error-pattern family and ECC scheme, how often
// the hardware corrects, detects-but-cannot-correct, silently miscorrects,
// or passes the error through — and, crossed with ABFT's correction
// capability, how often each of Cases 1–4 occurs. It substantiates the
// paper's qualitative claims ("Case 3 may be rare", "using weak ECC further
// reduces those errors") with measured rates.
package resilience

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"coopabft/internal/campaign"
	"coopabft/internal/ecc"
)

// PatternFamily generates random error patterns of one §4 flavor.
type PatternFamily int

const (
	// SingleBit is one flipped bit per line.
	SingleBit PatternFamily = iota
	// DoubleBitWord is two flipped bits within one 64-bit word.
	DoubleBitWord
	// ChipSymbol corrupts one whole 8-bit symbol (a dead x4 chip pair).
	ChipSymbol
	// TwoSymbols corrupts two distinct symbols of one codeword half.
	TwoSymbols
	// Burst64 corrupts a random run of 2–8 consecutive bytes (a wide burst
	// crossing symbol boundaries).
	Burst64
)

// Families lists all pattern families.
var Families = []PatternFamily{SingleBit, DoubleBitWord, ChipSymbol, TwoSymbols, Burst64}

// String implements fmt.Stringer.
func (p PatternFamily) String() string {
	switch p {
	case SingleBit:
		return "single-bit"
	case DoubleBitWord:
		return "double-bit/word"
	case ChipSymbol:
		return "chip-symbol"
	case TwoSymbols:
		return "two-symbols"
	case Burst64:
		return "byte-burst"
	default:
		return fmt.Sprintf("PatternFamily(%d)", int(p))
	}
}

// generate draws one line-sized XOR pattern of the family.
func (p PatternFamily) generate(rng *rand.Rand) (line [ecc.LineSize]byte) {
	switch p {
	case SingleBit:
		line[rng.Intn(64)] = 1 << rng.Intn(8)
	case DoubleBitWord:
		w := rng.Intn(8)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		for b2 == b1 {
			b2 = rng.Intn(64)
		}
		line[w*8+b1/8] ^= 1 << (b1 % 8)
		line[w*8+b2/8] ^= 1 << (b2 % 8)
	case ChipSymbol:
		v := byte(1 + rng.Intn(255))
		line[rng.Intn(64)] = v
	case TwoSymbols:
		half := rng.Intn(2) * 32
		s1 := rng.Intn(32)
		s2 := rng.Intn(32)
		for s2 == s1 {
			s2 = rng.Intn(32)
		}
		line[half+s1] = byte(1 + rng.Intn(255))
		line[half+s2] = byte(1 + rng.Intn(255))
	case Burst64:
		n := 2 + rng.Intn(7)
		start := rng.Intn(64 - n)
		for i := 0; i < n; i++ {
			line[start+i] = byte(1 + rng.Intn(255))
		}
	}
	return line
}

// Outcome tallies hardware dispositions over a campaign.
type Outcome struct {
	Trials       int
	Corrected    int // repaired exactly
	Detected     int // flagged uncorrectable (goes to ABFT / panic)
	Miscorrected int // "corrected" the wrong bits: silent data corruption
	Passthrough  int // no ECC: error reaches software unobserved
}

// Rate returns n/Trials.
func (o Outcome) Rate(n int) float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(n) / float64(o.Trials)
}

// add accumulates another outcome (order-independent, so partial tallies
// from parallel workers sum deterministically).
func (o *Outcome) add(p Outcome) {
	o.Trials += p.Trials
	o.Corrected += p.Corrected
	o.Detected += p.Detected
	o.Miscorrected += p.Miscorrected
	o.Passthrough += p.Passthrough
}

// runTrial injects one random pattern of the family into an encoded zero
// line (exact for linear codes) under the scheme's codec. The trial's RNG
// is derived from (seed, trial index) alone — never shared across trials —
// so a campaign's tally is identical for any trial schedule.
func runTrial(codec ecc.LineCodec, family PatternFamily, seed int64, trial int) Outcome {
	rng := rand.New(rand.NewSource(int64(campaign.CellSeed(uint64(seed), uint64(trial)))))
	line := family.generate(rng)
	out := Outcome{Trials: 1}
	if codec.Scheme == ecc.None {
		out.Passthrough++
		return out
	}
	var stored [ecc.LineSize]byte
	check := codec.Encode(&stored) // clean redundancy for the zero line
	stored = line                  // apply the error pattern
	switch codec.Decode(&stored, check) {
	case ecc.OK:
		// Impossible for a nonzero pattern on a distance-≥3 code unless
		// the pattern aliased to a codeword; count as miscorrection.
		out.Miscorrected++
	case ecc.Corrected:
		if stored == [ecc.LineSize]byte{} {
			out.Corrected++
		} else {
			out.Miscorrected++
		}
	case ecc.Detected:
		out.Detected++
	}
	return out
}

// RunCampaignCtx injects `trials` per-trial-seeded patterns of the family
// under the scheme's codec, fanning blocks of trials across the engine
// (nil = serial). The tally is bit-identical for any worker count.
func RunCampaignCtx(ctx context.Context, scheme ecc.Scheme, family PatternFamily, trials int, seed int64, eng *campaign.Engine) (Outcome, error) {
	codec := ecc.LineCodec{Scheme: scheme}
	if eng == nil {
		eng = campaign.New(campaign.WithWorkers(1))
	}
	// Chunk the trial space so cells amortize scheduling overhead; the
	// per-trial seeds make the partition irrelevant to the result.
	chunks := eng.Workers() * 8
	if chunks > trials {
		chunks = trials
	}
	if chunks < 1 {
		chunks = 1
	}
	parts, _, err := campaign.Map(ctx, eng, chunks,
		func(ctx context.Context, c int) (Outcome, error) {
			if err := ctx.Err(); err != nil {
				return Outcome{}, err
			}
			lo, hi := c*trials/chunks, (c+1)*trials/chunks
			var part Outcome
			for t := lo; t < hi; t++ {
				part.add(runTrial(codec, family, seed, t))
			}
			return part, nil
		})
	if err != nil {
		return Outcome{}, err
	}
	var out Outcome
	for _, p := range parts {
		out.add(p)
	}
	return out, nil
}

// ABFTCorrects models the checksum kernels' capability for single-line
// corruption: any number of corrupted elements within one cacheline is
// repairable (they share a row; each element is rebuilt from its column
// checksum), so all families here are ABFT-correctable. It is exposed as a
// function to keep the case accounting explicit and testable.
func ABFTCorrects(PatternFamily) bool { return true }

// CaseRow is the empirical §4 classification for one (family, scheme).
type CaseRow struct {
	Family PatternFamily
	Strong ecc.Scheme // the "strong ECC" of the ASE configuration
	Outcome
	Case1Rate float64 // both correct (hardware corrected; ABFT could too)
	Case2Rate float64 // ABFT only (hardware failed, ABFT corrects)
	Case3Rate float64 // ECC only (would need ABFT-uncorrectable patterns)
	Case4Rate float64 // neither
	SilentSDC float64 // miscorrection rate: undetectable by either side alone
}

// ClassifyCasesCtx runs campaigns for every family against a strong
// scheme and derives the §4 case frequencies, sharing one engine across
// the families' trial fan-outs.
func ClassifyCasesCtx(ctx context.Context, strong ecc.Scheme, trials int, seed int64, eng *campaign.Engine) ([]CaseRow, error) {
	rows := make([]CaseRow, 0, len(Families))
	for _, f := range Families {
		o, err := RunCampaignCtx(ctx, strong, f, trials, seed, eng)
		if err != nil {
			return nil, err
		}
		r := CaseRow{Family: f, Strong: strong, Outcome: o}
		abft := ABFTCorrects(f)
		if abft {
			r.Case1Rate = o.Rate(o.Corrected)
			r.Case2Rate = o.Rate(o.Detected)
		} else {
			r.Case3Rate = o.Rate(o.Corrected)
			r.Case4Rate = o.Rate(o.Detected)
		}
		r.SilentSDC = o.Rate(o.Miscorrected)
		rows = append(rows, r)
	}
	return rows, nil
}

// Render writes the classification as a table.
func Render(w io.Writer, rows []CaseRow) {
	fmt.Fprintf(w, "\n== §4 case frequencies (Monte-Carlo on real codecs, strong ECC = %v) ==\n", rows[0].Strong)
	fmt.Fprintf(w, "%-16s%10s%10s%10s%10s%12s\n", "pattern", "case1", "case2", "case3", "case4", "silent SDC")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s%9.1f%%%9.1f%%%9.1f%%%9.1f%%%11.2f%%\n",
			r.Family, 100*r.Case1Rate, 100*r.Case2Rate, 100*r.Case3Rate, 100*r.Case4Rate, 100*r.SilentSDC)
	}
}
