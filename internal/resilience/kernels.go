package resilience

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/mat"
)

// Kernel capability curves: §4's Case 3 ("strong ECC can correct while ABFT
// cannot") hinges on how often realistic error patterns exceed ABFT's
// correction capability. This campaign measures it directly: for each
// kernel and each simultaneous-error count k, inject k random corruptions
// and record whether the kernel's verification repaired them all and the
// final result checked out.

// KernelName selects a capability-curve subject.
type KernelName int

const (
	// KernelDGEMM sweeps FT-DGEMM.
	KernelDGEMM KernelName = iota
	// KernelCholesky sweeps FT-Cholesky.
	KernelCholesky
	// KernelLU sweeps FT-LU.
	KernelLU
	// KernelQR sweeps FT-QR.
	KernelQR
	// KernelCG sweeps FT-CG (invariant-based, so multi-error recovery is a
	// single state rebuild).
	KernelCG
)

// CapabilityKernels lists the swept kernels.
var CapabilityKernels = []KernelName{KernelDGEMM, KernelCholesky, KernelLU, KernelQR, KernelCG}

// String implements fmt.Stringer.
func (k KernelName) String() string {
	switch k {
	case KernelDGEMM:
		return "FT-DGEMM"
	case KernelCholesky:
		return "FT-Cholesky"
	case KernelLU:
		return "FT-LU"
	case KernelQR:
		return "FT-QR"
	case KernelCG:
		return "FT-CG"
	default:
		return "?"
	}
}

// CapabilityPoint is one (kernel, error-count) sample.
type CapabilityPoint struct {
	Kernel      KernelName
	Errors      int
	Trials      int
	Repaired    int // runs that finished with a verified result
	Detected    int // runs that flagged ErrUncorrectable (honest refusal)
	SilentWrong int // runs that finished but produced a wrong result
}

// RepairRate returns Repaired/Trials.
func (p CapabilityPoint) RepairRate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Repaired) / float64(p.Trials)
}

// CapabilityCurveCtx sweeps simultaneous error counts for one kernel,
// fanning the (error count, trial) grid across the engine (nil = serial).
// Each trial runs on a generator derived from (seed, flat trial index), so
// the curve is bit-identical for any worker count.
func CapabilityCurveCtx(ctx context.Context, kernel KernelName, size int, errorCounts []int, trials int, seed int64, eng *campaign.Engine) ([]CapabilityPoint, error) {
	if eng == nil {
		eng = campaign.New(campaign.WithWorkers(1))
	}
	outcomes, _, err := campaign.Map(ctx, eng, len(errorCounts)*trials,
		func(ctx context.Context, i int) (trialOutcome, error) {
			if err := ctx.Err(); err != nil {
				return trialDetected, err
			}
			k := errorCounts[i/trials]
			rng := rand.New(rand.NewSource(int64(campaign.CellSeed(uint64(seed), uint64(i)))))
			return runCapabilityTrial(kernel, size, k, rng), nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]CapabilityPoint, 0, len(errorCounts))
	for ki, k := range errorCounts {
		p := CapabilityPoint{Kernel: kernel, Errors: k, Trials: trials}
		for t := 0; t < trials; t++ {
			switch outcomes[ki*trials+t] {
			case trialRepaired:
				p.Repaired++
			case trialDetected:
				p.Detected++
			case trialSilentWrong:
				p.SilentWrong++
			}
		}
		out = append(out, p)
	}
	return out, nil
}

type trialOutcome int

const (
	trialRepaired trialOutcome = iota
	trialDetected
	trialSilentWrong
)

// runCapabilityTrial injects k simultaneous corruptions before one run.
func runCapabilityTrial(kernel KernelName, n, k int, rng *rand.Rand) trialOutcome {
	seed := rng.Uint64()
	mag := func() float64 { return 1 + 10*rng.Float64() }
	switch kernel {
	case KernelDGEMM:
		d, err := abft.NewDGEMM(abft.Standalone(), n, seed)
		if err != nil {
			return trialDetected
		}
		if err := d.Run(); err != nil {
			return trialDetected
		}
		for e := 0; e < k; e++ {
			d.Cf.Add(rng.Intn(n+1), rng.Intn(n+1), mag())
		}
		if err := d.VerifyFull(); err != nil {
			return trialDetected
		}
		if d.CheckResult() != nil {
			return trialSilentWrong
		}
		return trialRepaired
	case KernelCholesky:
		c := abft.NewCholesky(abft.Standalone(), n, seed)
		orig := c.A.Matrix.Clone()
		for e := 0; e < k; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i < j {
				i, j = j, i
			}
			c.A.Add(i, j, mag())
		}
		if err := c.Run(); err != nil {
			return trialDetected
		}
		if c.CheckResult(orig) != nil {
			return trialSilentWrong
		}
		return trialRepaired
	case KernelLU:
		l := abft.NewLU(abft.Standalone(), n, seed)
		orig := cloneSquare(l.Af.Row, n)
		for e := 0; e < k; e++ {
			l.Af.Add(rng.Intn(n), rng.Intn(n), mag())
		}
		if err := l.Run(); err != nil {
			return trialDetected
		}
		if l.CheckResult(orig) != nil {
			return trialSilentWrong
		}
		return trialRepaired
	case KernelQR:
		q := abft.NewQR(abft.Standalone(), n, seed)
		orig := cloneSquare(q.Af.Row, n)
		for e := 0; e < k; e++ {
			q.Af.Add(rng.Intn(n), rng.Intn(n), mag())
		}
		if err := q.Run(); err != nil {
			return trialDetected
		}
		if q.CheckResult(orig) != nil {
			return trialSilentWrong
		}
		return trialRepaired
	case KernelCG:
		side := 12
		c := abft.NewCG(abft.Standalone(), side, side, seed)
		c.CheckPeriod = 2
		names := []string{"r", "p", "q", "x"}
		injected := false
		c.OnIteration = func(iter int) {
			if iter == 4 && !injected {
				injected = true
				for e := 0; e < k; e++ {
					v, _ := c.VecFor(names[rng.Intn(len(names))])
					v.Data[rng.Intn(len(v.Data))] += 1e6 * mag()
				}
			}
		}
		out, err := c.Run()
		if err != nil || !out.Converged {
			return trialDetected
		}
		if c.TrueResidual() > 1e-6 {
			return trialSilentWrong
		}
		return trialRepaired
	default:
		return trialDetected
	}
}

func cloneSquare(row func(int) []float64, n int) *mat.Matrix {
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		copy(m.Row(i), row(i)[:n])
	}
	return m
}

// RenderCapability writes the curves as a table.
func RenderCapability(w io.Writer, curves [][]CapabilityPoint) {
	fmt.Fprintf(w, "\n== ABFT correction capability (repair rate vs simultaneous errors) ==\n")
	fmt.Fprintf(w, "%-14s%10s%12s%12s%14s\n", "kernel", "errors", "repaired", "detected", "silent wrong")
	for _, curve := range curves {
		for _, p := range curve {
			fmt.Fprintf(w, "%-14s%10d%11.0f%%%11.0f%%%13.1f%%\n",
				p.Kernel, p.Errors, 100*p.RepairRate(),
				100*float64(p.Detected)/float64(p.Trials),
				100*float64(p.SilentWrong)/float64(p.Trials))
		}
	}
}
