package resilience

import (
	"context"
	"testing"

	"coopabft/internal/ecc"
)

// The must* helpers run the Ctx entry points serially and fail the test on
// error, keeping assertions free of error plumbing.

func mustCampaign(t testing.TB, scheme ecc.Scheme, family PatternFamily, trials int, seed int64) Outcome {
	t.Helper()
	o, err := RunCampaignCtx(context.Background(), scheme, family, trials, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func mustClassify(t testing.TB, strong ecc.Scheme, trials int, seed int64) []CaseRow {
	t.Helper()
	rows, err := ClassifyCasesCtx(context.Background(), strong, trials, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func mustCapability(t testing.TB, kernel KernelName, size int, errorCounts []int, trials int, seed int64) []CapabilityPoint {
	t.Helper()
	pts, err := CapabilityCurveCtx(context.Background(), kernel, size, errorCounts, trials, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}
