package resilience

import (
	"bytes"
	"strings"
	"testing"

	"coopabft/internal/ecc"
)

func TestSingleBitAlwaysCorrected(t *testing.T) {
	for _, s := range []ecc.Scheme{ecc.SECDED, ecc.Chipkill} {
		o := mustCampaign(t, s, SingleBit, 500, 1)
		if o.Corrected != o.Trials {
			t.Errorf("%v: single-bit corrected %d/%d", s, o.Corrected, o.Trials)
		}
	}
}

func TestDoubleBitSplit(t *testing.T) {
	// SECDED: all double-bit-per-word errors detected, never miscorrected.
	o := mustCampaign(t, ecc.SECDED, DoubleBitWord, 500, 2)
	if o.Detected != o.Trials {
		t.Errorf("SECDED double-bit: %+v", o)
	}
	// Chipkill: two bits within one symbol are corrected, across symbols
	// (same codeword) detected — never silent.
	o = mustCampaign(t, ecc.Chipkill, DoubleBitWord, 500, 3)
	if o.Miscorrected != 0 {
		t.Errorf("chipkill double-bit miscorrects: %+v", o)
	}
	if o.Corrected == 0 || o.Detected == 0 {
		t.Errorf("chipkill double-bit should split corrected/detected: %+v", o)
	}
	if o.Corrected+o.Detected != o.Trials {
		t.Errorf("chipkill double-bit unaccounted: %+v", o)
	}
}

func TestChipSymbolShowsChipkillAdvantage(t *testing.T) {
	ck := mustCampaign(t, ecc.Chipkill, ChipSymbol, 500, 4)
	if ck.Corrected != ck.Trials {
		t.Errorf("chipkill should correct every chip failure: %+v", ck)
	}
	sd := mustCampaign(t, ecc.SECDED, ChipSymbol, 500, 4)
	if sd.Corrected == sd.Trials {
		t.Error("SECDED should not correct every chip failure")
	}
	// SECDED on multi-bit symbols: mostly detected, some single-bit symbols
	// corrected, odd-weight wide patterns occasionally miscorrected — but
	// detection must dominate.
	if sd.Detected <= sd.Trials/2 {
		t.Errorf("SECDED chip-symbol detection too low: %+v", sd)
	}
}

func TestTwoSymbolsBeyondBoth(t *testing.T) {
	ck := mustCampaign(t, ecc.Chipkill, TwoSymbols, 500, 5)
	if ck.Corrected != 0 {
		t.Errorf("chipkill corrected a two-symbol error: %+v", ck)
	}
	if ck.Detected != ck.Trials {
		t.Errorf("chipkill two-symbol should always detect: %+v", ck)
	}
}

func TestNoECCPassthrough(t *testing.T) {
	o := mustCampaign(t, ecc.None, Burst64, 100, 6)
	if o.Passthrough != o.Trials {
		t.Errorf("no-ECC should pass everything through: %+v", o)
	}
}

func TestBurstRatesSane(t *testing.T) {
	// 4000 trials: the rarest asserted event (a burst straddling the two
	// codeword halves with one symbol in each, which chipkill corrects)
	// occurs at ≈0.25%, so the expected count is ~10 and the checks are
	// not seed-luck.
	sd := mustCampaign(t, ecc.SECDED, Burst64, 4000, 7)
	ck := mustCampaign(t, ecc.Chipkill, Burst64, 4000, 7)
	for _, o := range []Outcome{sd, ck} {
		if o.Corrected+o.Detected+o.Miscorrected+o.Passthrough != o.Trials {
			t.Errorf("outcomes don't sum: %+v", o)
		}
		if o.Rate(o.Detected) < 0.5 {
			t.Errorf("burst detection rate %.2f too low: %+v", o.Rate(o.Detected), o)
		}
	}
	// SECDED genuinely miscorrects a sizable share of wide bursts (odd-
	// weight syndromes alias to single-bit corrections) — one of chipkill's
	// raisons d'être. Chipkill's 4-syndrome consistency check makes its
	// burst miscorrection essentially zero.
	if r := sd.Rate(sd.Miscorrected); r < 0.05 || r > 0.40 {
		t.Errorf("SECDED burst miscorrection rate %.2f outside the expected band", r)
	}
	if r := ck.Rate(ck.Miscorrected); r > 0.01 {
		t.Errorf("chipkill burst miscorrection rate %.3f should be ≈0", r)
	}
	// Bursts confined to one symbol are corrected by chipkill only.
	if ck.Corrected == 0 {
		t.Error("chipkill corrected no bursts (2-byte bursts within a symbol exist)")
	}
}

func TestClassifyCasesStructure(t *testing.T) {
	rows := mustClassify(t, ecc.Chipkill, 300, 8)
	if len(rows) != len(Families) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.Case1Rate + r.Case2Rate + r.Case3Rate + r.Case4Rate + r.SilentSDC
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%v: case rates sum to %v", r.Family, sum)
		}
		// With single-line patterns ABFT corrects everything: the paper's
		// "Case 3 may be rare" is exactly 0 here.
		if r.Case3Rate != 0 || r.Case4Rate != 0 {
			t.Errorf("%v: unexpected case3/case4: %+v", r.Family, r)
		}
	}
	// Chip failures under chipkill are pure Case 1.
	for _, r := range rows {
		if r.Family == ChipSymbol && r.Case1Rate != 1 {
			t.Errorf("chip-symbol under chipkill case1 = %v", r.Case1Rate)
		}
	}
}

func TestRenderOutput(t *testing.T) {
	var b bytes.Buffer
	Render(&b, mustClassify(t, ecc.SECDED, 100, 9))
	out := b.String()
	for _, want := range []string{"case1", "silent SDC", "single-bit", "byte-burst"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDeterministicCampaigns(t *testing.T) {
	a := mustCampaign(t, ecc.SECDED, Burst64, 200, 11)
	b := mustCampaign(t, ecc.SECDED, Burst64, 200, 11)
	if a != b {
		t.Error("campaign not deterministic for equal seeds")
	}
}

func TestFamilyStrings(t *testing.T) {
	for _, f := range Families {
		if strings.Contains(f.String(), "PatternFamily") {
			t.Errorf("family %d missing name", f)
		}
	}
	if PatternFamily(99).String() != "PatternFamily(99)" {
		t.Error("unknown family string")
	}
}

func TestCapabilityCurveDGEMM(t *testing.T) {
	pts := mustCapability(t, KernelDGEMM, 20, []int{1, 2, 8}, 12, 1)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Single errors are always repaired.
	if pts[0].RepairRate() != 1 {
		t.Errorf("k=1 repair rate = %v", pts[0].RepairRate())
	}
	// No silent wrong answers anywhere: failures must be honest refusals.
	for _, p := range pts {
		if p.SilentWrong != 0 {
			t.Errorf("k=%d: %d silent wrong results", p.Errors, p.SilentWrong)
		}
		if p.Repaired+p.Detected+p.SilentWrong != p.Trials {
			t.Errorf("k=%d: outcomes don't sum", p.Errors)
		}
	}
	// Repair rate is non-increasing in the error count.
	for i := 1; i < len(pts); i++ {
		if pts[i].RepairRate() > pts[i-1].RepairRate() {
			t.Errorf("repair rate increased: %+v", pts)
		}
	}
}

func TestCapabilitySingleErrorAllKernels(t *testing.T) {
	for _, k := range CapabilityKernels {
		pts := mustCapability(t, k, 16, []int{1}, 8, 2)
		if pts[0].RepairRate() != 1 {
			t.Errorf("%v: single-error repair rate = %v (detected %d, wrong %d)",
				k, pts[0].RepairRate(), pts[0].Detected, pts[0].SilentWrong)
		}
	}
}

func TestCapabilityCGMultiError(t *testing.T) {
	// CG's invariant recovery rebuilds the whole state: even several
	// simultaneous errors are healed by one restart.
	pts := mustCapability(t, KernelCG, 0, []int{4}, 6, 3)
	if pts[0].RepairRate() != 1 {
		t.Errorf("CG 4-error repair rate = %v", pts[0].RepairRate())
	}
}

func TestRenderCapability(t *testing.T) {
	var b bytes.Buffer
	RenderCapability(&b, [][]CapabilityPoint{
		mustCapability(t, KernelDGEMM, 16, []int{1, 2}, 4, 4),
	})
	if !strings.Contains(b.String(), "FT-DGEMM") {
		t.Error("render missing kernel name")
	}
}

func TestNoSilentWrongAcrossAllKernels(t *testing.T) {
	// The post-repair re-verification guarantee: ABFT either repairs or
	// honestly refuses — it never silently produces a wrong result.
	for _, k := range CapabilityKernels {
		for _, p := range mustCapability(t, k, 20, []int{2, 4, 8}, 10, 9) {
			if p.SilentWrong != 0 {
				t.Errorf("%v k=%d: %d silent wrong results", k, p.Errors, p.SilentWrong)
			}
		}
	}
}
