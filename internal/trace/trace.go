// Package trace provides the instrumentation layer between the ABFT kernels
// and the machine simulator — the stand-in for Pin in the paper's evaluation
// stack (Figure 4).
//
// Kernels allocate their data structures from a Space, which assigns virtual
// address ranges tagged with a name and an "ABFT-protected" bit. While
// computing, kernels report the element ranges they read and write through a
// Memory; the Memory turns them into cacheline-granular accesses and forwards
// them to a Probe (the simulated cache hierarchy). With a nil Probe the cost
// is a single branch, so the same kernel code runs traced and untraced.
package trace

import "fmt"

// LineSize is the cacheline size in bytes (Table 3: 64B blocks).
const LineSize = 64

// PageSize is the page-frame size used by the OS model.
const PageSize = 4096

// Probe receives one event per cacheline touched.
type Probe func(lineAddr uint64, write bool)

// Region is a tagged virtual address range.
type Region struct {
	Name string
	Base uint64
	Size uint64
	// ABFT marks data structures protected by algorithm-based fault
	// tolerance; the memory controller may run them under relaxed ECC and
	// Table 4 classifies LLC misses by this bit.
	ABFT bool
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Space is a page-aligned bump allocator of tagged virtual regions. The base
// starts above zero so that address 0 is never valid.
type Space struct {
	next    uint64
	regions []Region
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{next: PageSize} }

// Alloc reserves size bytes (rounded up to whole pages) and tags them.
func (s *Space) Alloc(name string, size uint64, abft bool) Region {
	if size == 0 {
		size = 1
	}
	pages := (size + PageSize - 1) / PageSize
	r := Region{Name: name, Base: s.next, Size: pages * PageSize, ABFT: abft}
	s.next += r.Size
	s.regions = append(s.regions, r)
	return r
}

// AllocFloats reserves room for n float64 values.
func (s *Space) AllocFloats(name string, n int, abft bool) Region {
	return s.Alloc(name, uint64(n)*8, abft)
}

// Regions returns all allocated regions in allocation order.
func (s *Space) Regions() []Region { return s.regions }

// Find returns the region containing addr, or false.
func (s *Space) Find(addr uint64) (Region, bool) {
	for _, r := range s.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// IsABFT reports whether addr belongs to an ABFT-protected region.
func (s *Space) IsABFT(addr uint64) bool {
	r, ok := s.Find(addr)
	return ok && r.ABFT
}

// Memory forwards element-range touches to a probe at cacheline granularity.
// The zero value (nil probe) is usable and free.
type Memory struct {
	Probe Probe
	// OnOps, if set, receives arithmetic-operation counts so the timing
	// model can advance compute time alongside memory traffic.
	OnOps func(n int)
}

// Ops reports n arithmetic operations performed by the kernel.
func (m *Memory) Ops(n int) {
	if m == nil || m.OnOps == nil || n <= 0 {
		return
	}
	m.OnOps(n)
}

// Touch reports an access to bytes [addr, addr+size).
func (m *Memory) Touch(addr uint64, size int, write bool) {
	if m == nil || m.Probe == nil || size <= 0 {
		return
	}
	first := addr &^ (LineSize - 1)
	last := (addr + uint64(size) - 1) &^ (LineSize - 1)
	for line := first; line <= last; line += LineSize {
		m.Probe(line, write)
	}
}

// TouchFloats reports an access to n consecutive float64 values starting at
// element index idx of a region.
func (m *Memory) TouchFloats(r Region, idx, n int, write bool) {
	if m == nil || m.Probe == nil || n <= 0 {
		return
	}
	m.Touch(r.Base+uint64(idx)*8, n*8, write)
}

// TouchStrided reports an access to count elements spaced stride float64
// apart (a column walk): each element usually lands on its own line.
func (m *Memory) TouchStrided(r Region, idx, count, stride int, write bool) {
	if m == nil || m.Probe == nil || count <= 0 {
		return
	}
	for k := 0; k < count; k++ {
		m.Touch(r.Base+uint64(idx+k*stride)*8, 8, write)
	}
}

// Counter is a probe that tallies accesses per region — the profiling used
// for Table 4. Wrap it around another probe with Chain.
type Counter struct {
	space *Space
	// ABFTRefs and OtherRefs count cacheline touches to ABFT-protected and
	// unprotected regions respectively.
	ABFTRefs, OtherRefs uint64
	ByRegion            map[string]uint64
}

// NewCounter returns a Counter classifying against space.
func NewCounter(space *Space) *Counter {
	return &Counter{space: space, ByRegion: make(map[string]uint64)}
}

// Probe records one access.
func (c *Counter) Probe(addr uint64, write bool) {
	r, ok := c.space.Find(addr)
	if ok && r.ABFT {
		c.ABFTRefs++
	} else {
		c.OtherRefs++
	}
	if ok {
		c.ByRegion[r.Name]++
	} else {
		c.ByRegion["<unmapped>"]++
	}
}

// Ratio returns ABFTRefs / OtherRefs (∞-safe: returns 0 when OtherRefs is 0
// and ABFTRefs is 0, and a large value string is avoided by the caller).
func (c *Counter) Ratio() float64 {
	if c.OtherRefs == 0 {
		if c.ABFTRefs == 0 {
			return 0
		}
		return float64(c.ABFTRefs)
	}
	return float64(c.ABFTRefs) / float64(c.OtherRefs)
}

// Chain fans one probe event out to several probes.
func Chain(probes ...Probe) Probe {
	return func(addr uint64, write bool) {
		for _, p := range probes {
			if p != nil {
				p(addr, write)
			}
		}
	}
}

// String describes the counter.
func (c *Counter) String() string {
	return fmt.Sprintf("trace.Counter{abft: %d, other: %d, ratio: %.1f}",
		c.ABFTRefs, c.OtherRefs, c.Ratio())
}
