package trace

import (
	"testing"
	"testing/quick"
)

func TestSpaceAllocPageAligned(t *testing.T) {
	s := NewSpace()
	r1 := s.Alloc("a", 100, true)
	r2 := s.Alloc("b", PageSize+1, false)
	if r1.Base%PageSize != 0 || r2.Base%PageSize != 0 {
		t.Errorf("regions not page aligned: %x %x", r1.Base, r2.Base)
	}
	if r1.Size != PageSize {
		t.Errorf("r1.Size = %d, want %d", r1.Size, PageSize)
	}
	if r2.Size != 2*PageSize {
		t.Errorf("r2.Size = %d, want %d", r2.Size, 2*PageSize)
	}
	if r2.Base != r1.End() {
		t.Errorf("r2 does not start at r1 end: %x vs %x", r2.Base, r1.End())
	}
	if r1.Base == 0 {
		t.Error("address 0 must never be allocated")
	}
}

func TestSpaceFind(t *testing.T) {
	s := NewSpace()
	a := s.AllocFloats("A", 512, true)
	b := s.AllocFloats("B", 512, false)
	if r, ok := s.Find(a.Base + 8); !ok || r.Name != "A" {
		t.Errorf("Find(A+8) = %v, %v", r, ok)
	}
	if r, ok := s.Find(b.End() - 1); !ok || r.Name != "B" {
		t.Errorf("Find(B end-1) = %v, %v", r, ok)
	}
	if _, ok := s.Find(b.End()); ok {
		t.Error("Find past the last region succeeded")
	}
	if _, ok := s.Find(0); ok {
		t.Error("Find(0) succeeded")
	}
	if !s.IsABFT(a.Base) || s.IsABFT(b.Base) {
		t.Error("IsABFT misclassifies")
	}
}

func TestMemoryTouchLineGranularity(t *testing.T) {
	var lines []uint64
	m := &Memory{Probe: func(addr uint64, write bool) { lines = append(lines, addr) }}

	// 8 bytes inside one line -> 1 access.
	m.Touch(LineSize+8, 8, false)
	if len(lines) != 1 || lines[0] != LineSize {
		t.Fatalf("single-line touch = %v", lines)
	}
	// Crossing one line boundary -> 2 accesses.
	lines = nil
	m.Touch(LineSize-4, 8, true)
	if len(lines) != 2 || lines[0] != 0 || lines[1] != LineSize {
		t.Fatalf("boundary touch = %v", lines)
	}
	// 64 floats = 512 bytes aligned -> 8 lines.
	lines = nil
	m.Touch(0, 512, false)
	if len(lines) != 8 {
		t.Fatalf("512B touch = %d lines, want 8", len(lines))
	}
}

func TestMemoryNilSafe(t *testing.T) {
	var m *Memory
	m.Touch(0, 64, false) // must not panic
	m2 := &Memory{}
	m2.Touch(0, 64, false)
	m2.TouchFloats(Region{}, 0, 4, false)
	m2.TouchStrided(Region{}, 0, 4, 10, true)
}

func TestTouchFloats(t *testing.T) {
	var n int
	m := &Memory{Probe: func(addr uint64, write bool) { n++ }}
	r := Region{Base: 0x10000, Size: 1 << 20}
	m.TouchFloats(r, 0, 8, false) // 64 bytes aligned = 1 line
	if n != 1 {
		t.Errorf("8 floats = %d lines, want 1", n)
	}
	n = 0
	m.TouchFloats(r, 4, 8, false) // straddles one boundary
	if n != 2 {
		t.Errorf("offset 8 floats = %d lines, want 2", n)
	}
}

func TestTouchStrided(t *testing.T) {
	var n int
	m := &Memory{Probe: func(addr uint64, write bool) { n++ }}
	r := Region{Base: 0x10000, Size: 1 << 20}
	m.TouchStrided(r, 0, 10, 100, false) // column walk: 10 separate lines
	if n != 10 {
		t.Errorf("strided touch = %d events, want 10", n)
	}
}

func TestCounterClassification(t *testing.T) {
	s := NewSpace()
	a := s.AllocFloats("A", 1024, true)
	b := s.AllocFloats("B", 1024, false)
	c := NewCounter(s)
	m := &Memory{Probe: c.Probe}
	m.TouchFloats(a, 0, 800, false) // 100 lines
	m.TouchFloats(b, 0, 80, true)   // 10 lines
	if c.ABFTRefs != 100 || c.OtherRefs != 10 {
		t.Errorf("counter = %v", c)
	}
	if r := c.Ratio(); r != 10 {
		t.Errorf("Ratio = %v, want 10", r)
	}
	if c.ByRegion["A"] != 100 || c.ByRegion["B"] != 10 {
		t.Errorf("ByRegion = %v", c.ByRegion)
	}
}

func TestCounterRatioEdgeCases(t *testing.T) {
	c := NewCounter(NewSpace())
	if c.Ratio() != 0 {
		t.Error("empty counter ratio should be 0")
	}
	c.ABFTRefs = 5
	if c.Ratio() != 5 {
		t.Error("zero-other ratio should be ABFTRefs")
	}
}

func TestChain(t *testing.T) {
	var a, b int
	p := Chain(func(uint64, bool) { a++ }, nil, func(uint64, bool) { b++ })
	p(0, false)
	p(64, true)
	if a != 2 || b != 2 {
		t.Errorf("chain fan-out a=%d b=%d", a, b)
	}
}

// Property: every line address emitted by Touch is line-aligned and covers
// the requested byte range.
func TestTouchCoversRangeProperty(t *testing.T) {
	f := func(addrSeed uint32, size uint16) bool {
		addr := uint64(addrSeed)
		n := int(size%4096) + 1
		var lines []uint64
		m := &Memory{Probe: func(a uint64, w bool) { lines = append(lines, a) }}
		m.Touch(addr, n, false)
		covered := make(map[uint64]bool)
		for _, l := range lines {
			if l%LineSize != 0 {
				return false
			}
			covered[l] = true
		}
		for b := addr; b < addr+uint64(n); b++ {
			if !covered[b&^(LineSize-1)] {
				return false
			}
		}
		// No over-coverage: count must equal the exact number of lines.
		want := int((addr+uint64(n)-1)/LineSize - addr/LineSize + 1)
		return len(lines) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
