package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"coopabft/internal/recovery"
	"coopabft/internal/recovery/soak"
)

// soakMain runs the chaos soak campaign: seed-deterministic multi-error
// injection across kernels, ECC strategies, error kinds and counts, under
// parallel mat workers, with every run classified corrected/restarted/
// aborted. Exits nonzero (via the caller) on any panic, hang, or run left
// unclassified.
func soakMain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "campaign seed (same seed → identical table)")
	workers := fs.Int("workers", 1, "concurrent runs")
	deadline := fs.Duration("deadline", 30*time.Second, "per-run wall-clock bound")
	short := fs.Bool("short", false, "run the trimmed 24-run grid instead of the full 216-run sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := soak.Default()
	if *short {
		cfg = soak.Short()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Deadline = *deadline

	res, err := soak.Run(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())

	if res.Panics > 0 || res.Hangs > 0 {
		return fmt.Errorf("%d panic(s), %d hang(s) — soak failed", res.Panics, res.Hangs)
	}
	classified := res.Counts[recovery.Corrected] + res.Counts[recovery.Restarted] + res.Counts[recovery.Aborted]
	if classified != len(res.Runs) {
		return fmt.Errorf("%d of %d runs unclassified", len(res.Runs)-classified, len(res.Runs))
	}
	return nil
}
