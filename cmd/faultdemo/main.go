// Command faultdemo walks through the four error-handling cases of §4,
// exercising the real ECC codecs against injected error patterns and
// showing how ARE (ABFT + relaxed ECC) and ASE (ABFT + strong ECC) differ.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/faultmodel"
	"coopabft/internal/machine"
)

func scenario(title string, kind bifit.Kind, strategy core.Strategy) error {
	fmt.Printf("\n── %s ──\n", title)
	rt := core.NewRuntime(machine.ScaledConfig(32), strategy, 7)
	d, err := rt.NewDGEMM(48, 3)
	if err != nil {
		return err
	}
	if err := d.Run(); err != nil {
		return err
	}
	rt.M.FlushCaches()

	tgt := bifit.Target{Data: d.Cf.Data, Reg: d.Cf.Reg}
	idx := 10*d.Cf.Stride + 10
	if kind == bifit.SingleBit {
		// Flip a high mantissa bit so the numerical damage is visible.
		if err := rt.Injector.FlipBits(tgt, idx, []int{51}); err != nil {
			return err
		}
	} else if err := rt.Injector.InjectKind(tgt, idx, kind); err != nil {
		return err
	}
	fmt.Printf("strategy %s: injected a %v pattern into Cf[10][10]\n", strategy, kind)

	rt.M.Memory().Touch(d.Cf.Addr(10, 10), 8, false)
	st := rt.M.Ctl.Stats()
	switch {
	case st.CorrectedErrors > 0:
		fmt.Println("→ ECC hardware corrected it; application data restored; ABFT never involved")
	case len(rt.M.OS.PeekCorruptions()) > 0:
		fmt.Println("→ ECC detected but could not correct; OS exposed the address to ABFT")
		if err := d.VerifyNotified(); err != nil {
			fmt.Printf("→ ABFT repair failed: %v\n", err)
		} else if err := d.CheckResult(); err == nil {
			fmt.Println("→ ABFT rebuilt the element from its column checksum; result verified")
		}
	case rt.M.OS.Panicked():
		fmt.Println("→ uncorrectable error outside ABFT: panic (checkpoint/restart)")
	default:
		fmt.Println("→ no ECC on this region: the corruption is latent; running full verification")
		if err := d.VerifyFull(); err != nil {
			fmt.Printf("→ ABFT could not correct: %v\n", err)
		} else if err := d.CheckResult(); err == nil {
			fmt.Printf("→ ABFT located and fixed it (%d correction(s)); result verified\n", len(d.Corrections))
		}
	}
	return nil
}

func main() {
	// Ctrl-C cancels soak campaigns cleanly (the campaign engine stops at
	// the next cell boundary) instead of killing the process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(os.Args) > 1 && os.Args[1] == "soak" {
		if err := soakMain(ctx, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "faultdemo soak:", err)
			os.Exit(1)
		}
		return
	}
	if err := demo(); err != nil {
		fmt.Fprintln(os.Stderr, "faultdemo:", err)
		os.Exit(1)
	}
}

func demo() error {
	fmt.Println("Error-handling scenarios of §4, on real SECDED/chipkill codecs")

	scenarios := []struct {
		title    string
		kind     bifit.Kind
		strategy core.Strategy
	}{
		{"Case 1 under ASE: single-bit error, strong ECC corrects cheaply",
			bifit.SingleBit, core.WholeChipkill},
		{"Case 1 under ARE: same error, no ECC on ABFT data — ABFT corrects (expensive)",
			bifit.SingleBit, core.PartialChipkillNoECC},
		{"Chip failure under chipkill: the defining correction",
			bifit.ChipFailure, core.WholeChipkill},
		{"Chip failure under relaxed SECDED: exposed to ABFT via interrupt",
			bifit.ChipFailure, core.PartialChipkillSECDED},
		{"Scattered multi-symbol error (Case 2/4 territory) under chipkill",
			bifit.Scattered, core.WholeChipkill},
	}
	for _, s := range scenarios {
		if err := scenario(s.title, s.kind, s.strategy); err != nil {
			return err
		}
	}

	fmt.Printf("\n── §4 thresholds ──\n")
	tc := 0.5     // one ABFT recovery, seconds
	tauASE := 0.2 // strong-ECC slowdown
	tauARE := 0.02
	thr := faultmodel.MTTFThresholdPerf(tc, tauASE, tauARE)
	fmt.Printf("With t_c=%.2fs, τ_ase=%.2f, τ_are=%.2f → MTTF threshold (Eq. 7) = %.1f s\n",
		tc, tauASE, tauARE, thr)
	fmt.Println("Below this node-level MTTF, keep strong ECC everywhere; above it, ARE wins.")

	for _, c := range []faultmodel.Case{
		faultmodel.CaseBothCorrect, faultmodel.CaseABFTOnly,
		faultmodel.CaseECCOnly, faultmodel.CaseNeither,
	} {
		o := faultmodel.CompareCase(c, 0.5, 1e-9, 600, false)
		fmt.Printf("%-22s ARE pays %8.3gs, ASE pays %8.3gs per error\n", c, o.ARECost, o.ASECost)
	}
	return nil
}
