// Command abftgate is the cluster gateway in front of a pool of abftd
// workers: capability-aware rendezvous placement, bounded per-node
// outstanding windows, health probes, circuit breakers, and failover
// retries on connection failures and 503s — never on a delivered answer.
// The wire surface is identical to a single abftd node, so abftload (and
// any client) drives a cluster without changes.
//
// Endpoints:
//
//	POST /v1/gemm, /v1/cholesky, /v1/cg   forwarded compute requests
//	POST   /v1/jobs                       submit an async job (202 + status)
//	GET    /v1/jobs/{id}                  poll a job's status/result
//	DELETE /v1/jobs/{id}                  cancel a job
//	PUT  /v1/jobs/{id}/checkpoint         worker checkpoint upload (long jobs)
//	GET  /v1/events                       cluster-wide NDJSON error-bus stream
//	GET  /healthz                         gateway liveness + per-node status
//	POST /admin/drain?node=ID             take a node out of placement
//	POST /admin/rejoin?node=ID            return a drained node to placement
//	GET  /debug/vars                      expvar counters (cluster.*)
//	GET  /debug/pprof/...                 profiling
//
// GEMM jobs at or above -shard-threshold are split into a 2D grid of block
// tasks with dedicated checksum-block tasks on distinct nodes; a lost
// worker's blocks are reconstructed algebraically from the survivors, never
// recomputed. Smaller jobs pass through the sync forwarding path.
//
// CG jobs ride the long path: the worker streams a checkpoint back to the
// gateway every -checkpoint-every steps, and when the worker dies mid-solve
// the gateway reschedules the job on a healthy capable node, ships the last
// checkpoint, and the solve resumes from that step — not from zero. Set
// -self-url when workers reach the gateway at an address other than -addr.
//
// Nodes are given as a comma-separated list of base URLs, each optionally
// restricted to an ECC-capability set:
//
//	abftgate -nodes "http://127.0.0.1:8321,http://127.0.0.1:8322=W_CK|P_CK+P_SD"
//
// A node without a capability suffix advertises all six strategies.
// SIGINT/SIGTERM drain in-flight requests and exit 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coopabft/internal/cluster"
	"coopabft/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abftgate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr            = flag.String("addr", "127.0.0.1:8320", "listen address")
		nodes           = flag.String("nodes", "", "comma-separated node base URLs, each optionally url=CAP|CAP (required)")
		window          = flag.Int("window", 8, "outstanding-request window per node")
		retries         = flag.Int("retries", 2, "failover attempts after a failed placement")
		retryBackoff    = flag.Duration("retry-backoff", 5*time.Millisecond, "base jittered delay before a failover retry")
		probeInterval   = flag.Duration("probe-interval", 250*time.Millisecond, "health-probe period (<0 disables)")
		probeTimeout    = flag.Duration("probe-timeout", time.Second, "per-probe budget")
		breakerFailures = flag.Int("breaker-failures", 3, "consecutive failures that open a node's breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before the next trial")
		seed            = flag.Uint64("seed", 1, "retry-jitter seed")
		drain           = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		shardThreshold  = flag.Int("shard-threshold", 256, "GEMM jobs with n >= this are sharded into block tasks")
		shardBlock      = flag.Int("shard-block", 128, "target block extent when choosing the shard grid")
		maxJobN         = flag.Int("max-job-n", 2048, "largest admitted job dimension")
		maxJobs         = flag.Int("max-jobs", 128, "job records held before submissions are shed")
		jobRetention    = flag.Duration("job-retention", 10*time.Minute, "how long terminal job records stay pollable")
		selfURL         = flag.String("self-url", "", "externally reachable base URL of this gateway; workers stream long-job checkpoints back to it (default http://<addr>)")
		checkpointEvery = flag.Int("checkpoint-every", 8, "steps between long-job checkpoint uploads")
		maxMigrations   = flag.Int("max-migrations", 3, "long-job reschedules before the job fails")
		voteReplicas    = flag.Int("vote-replicas", 3, "default replica count R for integrity=vote|verify-vote requests")
		suspectTrip     = flag.Int("suspect-trip", 3, "lost vote elections that open a node's breaker")
		suspectDecay    = flag.Int("suspect-decay", 0, "honest deliveries that forgive one accumulated suspect (0 = default 16, <0 disables)")
		tenantRate      = flag.Float64("tenant-rate", 0, "per-tenant admission token rate in req/s at the gateway door (0 disables)")
		tenantBurst     = flag.Float64("tenant-burst", 0, "per-tenant token bucket capacity (default 2x tenant-rate)")
	)
	flag.Parse()

	nodeCfgs, err := parseNodes(*nodes)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := &cluster.Metrics{}
	m.Publish()
	g, err := cluster.New(cluster.Config{
		Nodes:             nodeCfgs,
		Window:            *window,
		Retries:           *retries,
		RetryBackoff:      *retryBackoff,
		ProbeInterval:     *probeInterval,
		ProbeTimeout:      *probeTimeout,
		BreakerFailures:   *breakerFailures,
		BreakerCooldown:   *breakerCooldown,
		Seed:              *seed,
		Metrics:           m,
		ShardThreshold:    *shardThreshold,
		ShardBlock:        *shardBlock,
		MaxJobN:           *maxJobN,
		MaxJobs:           *maxJobs,
		JobRetention:      *jobRetention,
		CheckpointEvery:   *checkpointEvery,
		MaxMigrations:     *maxMigrations,
		VoteReplicas:      *voteReplicas,
		SuspectTrip:       *suspectTrip,
		SuspectDecayEvery: *suspectDecay,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
	})
	if err != nil {
		return err
	}
	if *selfURL != "" {
		g.SetSelfURL(*selfURL)
	} else {
		g.SetSelfURL("http://" + *addr)
	}

	mux := http.NewServeMux()
	mux.Handle("/", cluster.NewHandler(g))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("abftgate: serving on http://%s (%d nodes, window %d, retries %d)",
		ln.Addr(), len(nodeCfgs), *window, *retries)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight forwards classify,
	// then stop the prober.
	log.Printf("abftgate: signal received, draining (budget %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	g.Close()
	log.Printf("abftgate: drained, exiting")
	return nil
}

// parseNodes reads the -nodes spec: "url[=CAP|CAP...],url,...". The
// capability suffix uses the paper's strategy labels; omitting it
// advertises all six.
func parseNodes(spec string) ([]cluster.NodeConfig, error) {
	var out []cluster.NodeConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		url, caps, hasCaps := strings.Cut(part, "=")
		nc := cluster.NodeConfig{BaseURL: url}
		if hasCaps {
			for _, label := range strings.Split(caps, "|") {
				s, err := core.ParseStrategy(strings.TrimSpace(label))
				if err != nil {
					return nil, fmt.Errorf("node %s: %w", url, err)
				}
				nc.Strategies = append(nc.Strategies, s)
			}
		}
		out = append(out, nc)
	}
	if len(out) == 0 {
		return nil, errors.New("no nodes given (-nodes url,url,...)")
	}
	return out, nil
}
