// Command abftsim runs one ABFT kernel under one ECC strategy on the
// simulated node and reports timing, energy and resilience metrics — the
// single-experiment workhorse behind the paper's §5.1 sweeps.
//
// Usage:
//
//	abftsim -kernel dgemm|cholesky|cg|hpl -strategy no_ecc|w_ck|p_ck+no_ecc|w_sd|p_sd+no_ecc|p_ck+p_sd
//	        [-n N] [-grid X] [-iters I] [-notified] [-inject kind]
//
// -inject plants one error of the given kind (single-bit, double-bit,
// chip-failure, scattered) into the kernel's primary ABFT structure after
// the run and reads through it, demonstrating the detection path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/machine"
)

func strategyByName(name string) (core.Strategy, error) {
	for _, s := range core.Strategies {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (want one of %v)", name, core.Strategies)
}

func kindByName(name string) (bifit.Kind, error) {
	for _, k := range []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered} {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown error kind %q", name)
}

func main() {
	log.SetFlags(0)
	kernel := flag.String("kernel", "dgemm", "dgemm, cholesky, cg, hpl, lu or qr")
	strategy := flag.String("strategy", "p_ck+p_sd", "ECC strategy")
	n := flag.Int("n", 128, "matrix dimension (dgemm/cholesky/hpl)")
	grid := flag.Int("grid", 64, "CG grid side")
	iters := flag.Int("iters", 20, "CG iterations")
	notified := flag.Bool("notified", false, "use hardware-notified verification")
	inject := flag.String("inject", "", "post-run injection kind (single-bit, double-bit, chip-failure, scattered)")
	flag.Parse()

	s, err := strategyByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	mode := abft.FullVerify
	if *notified {
		mode = abft.NotifiedVerify
	}

	rt := core.NewRuntime(machine.ScaledConfig(32), s, 1)
	var target bifit.Target
	var corrections *[]abft.Correction
	var fix func() error

	switch strings.ToLower(*kernel) {
	case "dgemm":
		d := rt.NewDGEMM(*n, 1)
		d.Mode = mode
		must(d.Run())
		target = bifit.Target{Data: d.Cf.Data, Reg: d.Cf.Reg}
		corrections, fix = &d.Corrections, d.VerifyFull
	case "cholesky":
		c := rt.NewCholesky(*n, 1)
		c.Mode = mode
		must(c.Run())
		target = bifit.Target{Data: c.A.Data, Reg: c.A.Reg}
		corrections, fix = &c.Corrections, func() error { return c.VerifyL(c.N) }
	case "cg":
		c := rt.NewCG(*grid, *grid, 1)
		c.Mode = mode
		c.MaxIter = *iters
		c.RelTol = 0
		if _, err := c.Run(); err != nil {
			log.Fatal(err)
		}
		v, _ := c.VecFor("x")
		target = bifit.Target{Data: v.Data, Reg: v.Reg}
		corrections, fix = &c.Corrections, func() error { _, err := c.VerifyInvariants(); return err }
	case "hpl":
		h := rt.NewHPL(*n-*n%16, 8, 1)
		must(h.Run())
		target = bifit.Target{Data: h.A.Data, Reg: h.A.Reg}
		corrections, fix = &h.Corrections, func() error { return nil }
	case "lu":
		u := rt.NewLU(*n, 1)
		u.Mode = mode
		must(u.Run())
		target = bifit.Target{Data: u.Af.Data, Reg: u.Af.Reg}
		corrections, fix = &u.Corrections, func() error { return u.VerifyRows(0) }
	case "qr":
		r := rt.NewQR(*n, 1)
		r.Mode = mode
		must(r.Run())
		target = bifit.Target{Data: r.Af.Data, Reg: r.Af.Reg}
		corrections, fix = &r.Corrections, r.VerifyR
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	if *inject != "" {
		kind, err := kindByName(*inject)
		if err != nil {
			log.Fatal(err)
		}
		rt.M.FlushCaches()
		idx := rt.Injector.RandomElement(target)
		if err := rt.Injector.InjectKind(target, idx, kind); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected %v error at element %d of %s\n", kind, idx, target.Reg.Name)
		// Demand-read the line to let the hardware observe it.
		rt.M.Memory().Touch(target.Reg.Base+uint64(idx)*8, 8, false)
		if rt.M.OS.Panicked() {
			fmt.Println("outcome: OS PANIC (error outside ABFT protection)")
		} else if pend := rt.M.OS.PeekCorruptions(); len(pend) > 0 {
			fmt.Printf("outcome: ECC-uncorrectable; OS exposed %d corrupted line(s) to ABFT\n", len(pend))
			if err := fix(); err != nil {
				fmt.Printf("ABFT could not correct: %v\n", err)
			}
		} else if st := rt.M.Ctl.Stats(); st.CorrectedErrors > 0 {
			fmt.Println("outcome: corrected silently by ECC hardware")
		} else {
			fmt.Println("outcome: error latent (no ECC on this region); ABFT verification will catch it")
			if err := fix(); err != nil {
				fmt.Printf("ABFT verification: %v\n", err)
			}
		}
	}

	res := rt.Finish()
	fmt.Printf("\nkernel=%s strategy=%s mode=%s\n", *kernel, s, mode)
	fmt.Printf("time      %.6f s (%.3g cycles), IPC %.3f\n", res.Seconds, float64(res.Cycles), res.IPC)
	fmt.Printf("energy    processor %.4g J, memory dynamic %.4g J, memory standby %.4g J, system %.4g J\n",
		res.ProcEnergyJ, res.MemDynamicJ, res.MemStandbyJ, res.SystemEnergyJ)
	fmt.Printf("memory    row-buffer hit rate %.1f%%, LLC misses (ABFT/other) %d/%d\n",
		100*res.RowHitRate, res.LLCMissABFT, res.LLCMissOther)
	fmt.Printf("resilience ECC corrected %d, uncorrectable %d, interrupts %d, ABFT corrections %d\n",
		res.ECC.CorrectedErrors, res.ECC.UncorrectableErrors, res.Interrupts, len(*corrections))
	if res.OS.Panics > 0 {
		fmt.Printf("OS panics %d — a production system would checkpoint/restart here\n", res.OS.Panics)
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
