// Command abftsim runs one ABFT kernel under one ECC strategy on the
// simulated node and reports timing, energy and resilience metrics — the
// single-experiment workhorse behind the paper's §5.1 sweeps.
//
// Usage:
//
//	abftsim -kernel dgemm|cholesky|cg|hpl -strategy no_ecc|w_ck|p_ck+no_ecc|w_sd|p_sd+no_ecc|p_ck+p_sd
//	        [-n N] [-grid X] [-iters I] [-notified] [-inject kind]
//	        [-seed S] [-runs R] [-parallel N] [-progress]
//
// -inject plants one error of the given kind (single-bit, double-bit,
// chip-failure, scattered) into the kernel's primary ABFT structure after
// the run and reads through it, demonstrating the detection path.
//
// -runs R > 1 replays the experiment R times with per-replica seeds
// derived from (-seed, replica index) and fans the replicas across
// -parallel workers (default: all cores) through the campaign engine,
// reporting aggregate statistics — a quick Monte-Carlo over the seed
// dimension. Replicated runs do not support -inject.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/machine"
)

func kindByName(name string) (bifit.Kind, error) {
	for _, k := range []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered} {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown error kind %q", name)
}

// post carries the state the injection demo needs after a run.
type post struct {
	target      bifit.Target
	corrections *[]abft.Correction
	fix         func() error
}

// runKernel builds a fresh runtime and executes the selected kernel once
// with the given seed. It shares no state with concurrent replicas.
func runKernel(kernel string, s core.Strategy, mode abft.VerifyMode, n, grid, iters int, seed uint64) (*core.Runtime, post, error) {
	rt := core.NewRuntime(machine.ScaledConfig(32), s, int64(seed))
	var p post
	switch strings.ToLower(kernel) {
	case "dgemm":
		d, err := rt.NewDGEMM(n, seed)
		if err != nil {
			return nil, post{}, err
		}
		d.Mode = mode
		if err := d.Run(); err != nil {
			return nil, post{}, err
		}
		p = post{bifit.Target{Data: d.Cf.Data, Reg: d.Cf.Reg}, &d.Corrections, d.VerifyFull}
	case "cholesky":
		c := rt.NewCholesky(n, seed)
		c.Mode = mode
		if err := c.Run(); err != nil {
			return nil, post{}, err
		}
		p = post{bifit.Target{Data: c.A.Data, Reg: c.A.Reg}, &c.Corrections, func() error { return c.VerifyL(c.N) }}
	case "cg":
		c := rt.NewCG(grid, grid, seed)
		c.Mode = mode
		c.MaxIter = iters
		c.RelTol = 0
		if _, err := c.Run(); err != nil {
			return nil, post{}, err
		}
		v, _ := c.VecFor("x")
		p = post{bifit.Target{Data: v.Data, Reg: v.Reg}, &c.Corrections, func() error { _, err := c.VerifyInvariants(); return err }}
	case "hpl":
		h, err := rt.NewHPL(n-n%16, 8, seed)
		if err != nil {
			return nil, post{}, err
		}
		if err := h.Run(); err != nil {
			return nil, post{}, err
		}
		p = post{bifit.Target{Data: h.A.Data, Reg: h.A.Reg}, &h.Corrections, func() error { return nil }}
	case "lu":
		u := rt.NewLU(n, seed)
		u.Mode = mode
		if err := u.Run(); err != nil {
			return nil, post{}, err
		}
		p = post{bifit.Target{Data: u.Af.Data, Reg: u.Af.Reg}, &u.Corrections, func() error { return u.VerifyRows(0) }}
	case "qr":
		r := rt.NewQR(n, seed)
		r.Mode = mode
		if err := r.Run(); err != nil {
			return nil, post{}, err
		}
		p = post{bifit.Target{Data: r.Af.Data, Reg: r.Af.Reg}, &r.Corrections, r.VerifyR}
	default:
		return nil, post{}, fmt.Errorf("unknown kernel %q", kernel)
	}
	return rt, p, nil
}

func main() {
	log.SetFlags(0)
	kernel := flag.String("kernel", "dgemm", "dgemm, cholesky, cg, hpl, lu or qr")
	strategy := flag.String("strategy", "p_ck+p_sd", "ECC strategy")
	n := flag.Int("n", 128, "matrix dimension (dgemm/cholesky/hpl)")
	grid := flag.Int("grid", 64, "CG grid side")
	iters := flag.Int("iters", 20, "CG iterations")
	notified := flag.Bool("notified", false, "use hardware-notified verification")
	inject := flag.String("inject", "", "post-run injection kind (single-bit, double-bit, chip-failure, scattered)")
	seed := flag.Uint64("seed", 1, "base seed (replica seeds derive from it)")
	runs := flag.Int("runs", 1, "independent replicas to run")
	parallel := flag.Int("parallel", 0, "campaign engine workers for -runs > 1 (0 = all cores)")
	progress := flag.Bool("progress", false, "live replica progress on stderr")
	flag.Parse()

	s, err := core.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	mode := abft.FullVerify
	if *notified {
		mode = abft.NotifiedVerify
	}

	if *runs > 1 {
		if *inject != "" {
			log.Fatal("-inject requires -runs 1 (injection demos a single node)")
		}
		runReplicated(*kernel, s, mode, *n, *grid, *iters, *seed, *runs, *parallel, *progress)
		return
	}

	rt, p, err := runKernel(*kernel, s, mode, *n, *grid, *iters, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *inject != "" {
		kind, err := kindByName(*inject)
		if err != nil {
			log.Fatal(err)
		}
		rt.M.FlushCaches()
		idx := rt.Injector.RandomElement(p.target)
		if err := rt.Injector.InjectKind(p.target, idx, kind); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected %v error at element %d of %s\n", kind, idx, p.target.Reg.Name)
		// Demand-read the line to let the hardware observe it.
		rt.M.Memory().Touch(p.target.Reg.Base+uint64(idx)*8, 8, false)
		if rt.M.OS.Panicked() {
			fmt.Println("outcome: OS PANIC (error outside ABFT protection)")
		} else if pend := rt.M.OS.PeekCorruptions(); len(pend) > 0 {
			fmt.Printf("outcome: ECC-uncorrectable; OS exposed %d corrupted line(s) to ABFT\n", len(pend))
			if err := p.fix(); err != nil {
				fmt.Printf("ABFT could not correct: %v\n", err)
			}
		} else if st := rt.M.Ctl.Stats(); st.CorrectedErrors > 0 {
			fmt.Println("outcome: corrected silently by ECC hardware")
		} else {
			fmt.Println("outcome: error latent (no ECC on this region); ABFT verification will catch it")
			if err := p.fix(); err != nil {
				fmt.Printf("ABFT verification: %v\n", err)
			}
		}
	}

	res := rt.Finish()
	fmt.Printf("\nkernel=%s strategy=%s mode=%s seed=%d\n", *kernel, s, mode, *seed)
	fmt.Printf("time      %.6f s (%.3g cycles), IPC %.3f\n", res.Seconds, float64(res.Cycles), res.IPC)
	fmt.Printf("energy    processor %.4g J, memory dynamic %.4g J, memory standby %.4g J, system %.4g J\n",
		res.ProcEnergyJ, res.MemDynamicJ, res.MemStandbyJ, res.SystemEnergyJ)
	fmt.Printf("memory    row-buffer hit rate %.1f%%, LLC misses (ABFT/other) %d/%d\n",
		100*res.RowHitRate, res.LLCMissABFT, res.LLCMissOther)
	fmt.Printf("resilience ECC corrected %d, uncorrectable %d, interrupts %d, ABFT corrections %d\n",
		res.ECC.CorrectedErrors, res.ECC.UncorrectableErrors, res.Interrupts, len(*p.corrections))
	if res.OS.Panics > 0 {
		fmt.Printf("OS panics %d — a production system would checkpoint/restart here\n", res.OS.Panics)
		os.Exit(1)
	}
}

// runReplicated fans R independently-seeded replicas across the engine
// and prints aggregate statistics.
func runReplicated(kernel string, s core.Strategy, mode abft.VerifyMode, n, grid, iters int, seed uint64, runs, parallel int, progress bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engOpts := []campaign.Option{campaign.WithWorkers(parallel)}
	if progress {
		engOpts = append(engOpts, campaign.WithProgress(
			campaign.StderrProgress(os.Stderr, kernel+" replicas", 200*time.Millisecond)))
	}
	eng := campaign.New(engOpts...)

	results, metrics, err := campaign.Map(ctx, eng, runs,
		func(ctx context.Context, i int) (machine.Result, error) {
			if err := ctx.Err(); err != nil {
				return machine.Result{}, err
			}
			rt, _, err := runKernel(kernel, s, mode, n, grid, iters, campaign.CellSeed(seed, uint64(i)))
			if err != nil {
				return machine.Result{}, err
			}
			return rt.Finish(), nil
		})
	if err != nil {
		log.Fatalf("abftsim: %v", err)
	}

	var sumS, minS, maxS, sumJ float64
	var panics uint64
	for i, r := range results {
		if i == 0 || r.Seconds < minS {
			minS = r.Seconds
		}
		if r.Seconds > maxS {
			maxS = r.Seconds
		}
		sumS += r.Seconds
		sumJ += r.SystemEnergyJ
		panics += r.OS.Panics
	}
	fmt.Printf("\nkernel=%s strategy=%s mode=%s runs=%d seed=%d workers=%d\n",
		kernel, s, mode, runs, seed, eng.Workers())
	fmt.Printf("sim time  mean %.6f s, min %.6f s, max %.6f s\n",
		sumS/float64(runs), minS, maxS)
	fmt.Printf("energy    mean system %.4g J (aggregate %.4g J)\n", sumJ/float64(runs), sumJ)
	fmt.Printf("campaign  %.2f cells/s, avg %s/cell, utilization %.0f%%, wall %s\n",
		metrics.CellsPerSec, metrics.AvgCell.Round(time.Millisecond),
		100*metrics.Utilization, metrics.Elapsed.Round(time.Millisecond))
	if panics > 0 {
		fmt.Printf("OS panics %d across replicas\n", panics)
		os.Exit(1)
	}
}
