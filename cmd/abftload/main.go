// Command abftload is the open-loop load generator for abftd: it sweeps
// request rate × kernel × ECC strategy × verify mode × integrity mode
// against a live daemon, injects
// faults on a seeded fraction of requests, and reports p50/p95/p99 latency
// plus the full outcome taxonomy per cell. Because the loop is open,
// overload surfaces as typed 429/503 counts instead of silently slowing
// the client down.
//
// The sweep fails (exit 1) if any completed request reports an outcome
// outside the ladder's corrected/restarted/aborted taxonomy — the
// zero-wrong-answers acceptance gate — or if transport errors occurred.
// Against a gateway, -integrity vote,verify-vote exercises the
// replica-voting tier, and -forbid-node fails the sweep if any answer
// was delivered by a named node (the lying-node gate).
// With -bench-out, the per-cell aggregates are written as a
// machine-readable JSON baseline (BENCH_serve.json).
//
// With -recover-out, abftload instead runs the migrate-vs-cold-restart
// experiment against a gateway: one undisturbed CG long job prices the
// full restart, then the same solve is re-run with the executing worker
// SIGKILLed (-job-kill-nodes node=pid,...) after its first checkpoint.
// The run fails unless the job migrated, resumed from a step > 0,
// converged, and recovered faster than the cold baseline; the comparison
// is written as BENCH_recover.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/serve"
	"coopabft/internal/serve/benchjson"
	"coopabft/internal/serve/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abftload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8321", "abftd base URL")
		wait       = flag.Duration("wait", 0, "poll /healthz up to this long before starting (readiness gate)")
		rates      = flag.String("rates", "25", "comma-separated request rates (req/s)")
		kernels    = flag.String("kernels", "gemm", "comma-separated kernels (gemm,cholesky,cg)")
		strategies = flag.String("strategies", serve.DefaultStrategy.String(), "comma-separated ECC strategies (paper labels)")
		modes      = flag.String("verify-modes", "notified", "comma-separated verify modes (full,notified,fused); fused pairs only with gemm")
		integs     = flag.String("integrity", "none", "comma-separated integrity modes (none,vote,verify-vote); verify-vote pairs only with gemm")
		replicas   = flag.Int("replicas", 0, "vote width R for non-none integrity requests (0 = gateway default)")
		forbidNode = flag.String("forbid-node", "", "comma-separated node IDs that must never deliver an answer (lying-node gate; any hit fails the sweep)")
		tenants    = flag.String("tenants", "", "comma-separated tenant streams name=priority@rate, e.g. gold=protected@10,flood=speculative@100 (empty = one anonymous default-tenant stream)")
		dtypes     = flag.String("dtypes", "f64", "comma-separated element types (f64,f32); f32 pairs only with gemm and -verify-modes fused")
		tenantDone = flag.String("tenant-min-complete", "", "comma-separated name=fraction gates: fail unless the tenant completed at least this fraction of what it sent")
		tenantShed = flag.String("tenant-min-shed", "", "comma-separated name=count gates: fail unless the tenant saw at least this many throttled+shed rejections")
		duration   = flag.Duration("duration", 2*time.Second, "send window per cell")
		requests   = flag.Int("requests", 0, "fixed request count per cell (replayable mode; 0 = send for -duration)")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request budget")
		n          = flag.Int("n", 48, "gemm/cholesky dimension")
		nx         = flag.Int("nx", 8, "CG grid x")
		ny         = flag.Int("ny", 8, "CG grid y")
		fraction   = flag.Float64("fault-fraction", 0, "seeded fraction of requests that inject faults")
		faults     = flag.Int("faults", 1, "faults per injected request")
		kindName   = flag.String("fault-kind", "single-bit", "fault kind (single-bit,double-bit,chip-failure,scattered)")
		seed       = flag.Uint64("seed", 1, "sweep seed (same seed → same request stream)")
		retry429   = flag.Int("retry-429", 0, "retries after a 429 shed, honoring Retry-After (0 = count 429s as data)")
		retryCap   = flag.Duration("retry-after-cap", 2*time.Second, "upper bound on honored Retry-After waits")
		minDone    = flag.Float64("min-complete", 0, "fail unless at least this fraction of sent requests completed")
		benchOut   = flag.String("bench-out", "", "write machine-readable results (e.g. BENCH_serve.json)")

		jobs       = flag.Int("jobs", 0, "run this many async jobs via /v1/jobs instead of the rate sweep")
		jobKernel  = flag.String("job-kernel", "gemm", "job kernel: gemm (sharded) or cg (long path with checkpoint streaming)")
		jobN       = flag.Int("job-n", 256, "job GEMM dimension")
		jobNX      = flag.Int("job-nx", 48, "job CG grid x (-job-kernel cg)")
		jobNY      = flag.Int("job-ny", 48, "job CG grid y (-job-kernel cg)")
		jobVerify  = flag.Bool("job-verify", false, "recompute the reference product locally and require a bit-digest match")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job budget, submit through terminal state")
		jobKillPID = flag.Int("job-kill-pid", 0, "SIGKILL this pid once a job reports running with blocks outstanding (chaos smoke); requires reconstructions >= 1 and recomputes == 0")

		killNodes  = flag.String("job-kill-nodes", "", "comma-separated node=pid pairs; with -recover-out, SIGKILL the pid of the node executing the CG job once a checkpoint has landed")
		recoverOut = flag.String("recover-out", "", "run the migrate-vs-cold-restart experiment and write BENCH_recover.json here (requires -job-kill-nodes)")
		recoverCE  = flag.Int("recover-checkpoint-every", 8, "checkpoint cadence to stamp into the recover artifact (informational; must match the gateway's -checkpoint-every)")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Seed:          *seed,
		Duration:      *duration,
		Requests:      *requests,
		Timeout:       *timeout,
		N:             *n,
		NX:            *nx,
		NY:            *ny,
		FaultFraction: *fraction,
		Faults:        *faults,
	}
	var err error
	if cfg.Rates, err = parseRates(*rates); err != nil {
		return err
	}
	for _, name := range splitList(*kernels) {
		k, err := serve.ParseKernel(name)
		if err != nil {
			return err
		}
		cfg.Kernels = append(cfg.Kernels, k)
	}
	for _, name := range splitList(*strategies) {
		s, err := core.ParseStrategy(name)
		if err != nil {
			return err
		}
		cfg.Strategies = append(cfg.Strategies, s)
	}
	for _, name := range splitList(*modes) {
		m, err := abft.ParseVerifyMode(name)
		if err != nil {
			return err
		}
		cfg.Modes = append(cfg.Modes, m)
	}
	for _, name := range splitList(*integs) {
		i, err := serve.ParseIntegrity(name)
		if err != nil {
			return err
		}
		cfg.Integrities = append(cfg.Integrities, i)
	}
	cfg.Replicas = *replicas
	cfg.ForbidNodes = splitList(*forbidNode)
	if cfg.FaultKind, err = parseKind(*kindName); err != nil {
		return err
	}
	for _, name := range splitList(*dtypes) {
		d, err := serve.ParseDtype(name)
		if err != nil {
			return err
		}
		cfg.Dtypes = append(cfg.Dtypes, d)
	}
	if cfg.Tenants, err = parseTenants(*tenants); err != nil {
		return err
	}
	minComplete, err := parseTenantGates(*tenantDone)
	if err != nil {
		return err
	}
	minShed, err := parseTenantGates(*tenantShed)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &loadgen.HTTPClient{
		Base:          strings.TrimRight(*addr, "/"),
		Retry429:      *retry429,
		RetryAfterCap: *retryCap,
	}
	if *wait > 0 {
		if err := client.WaitReady(ctx, *wait); err != nil {
			return err
		}
	}
	if *jobs > 0 || *recoverOut != "" {
		jcfg := loadgen.JobsConfig{
			Jobs:    *jobs,
			Kernel:  strings.ToLower(*jobKernel),
			N:       *jobN,
			NX:      *jobNX,
			NY:      *jobNY,
			Seed:    *seed,
			Timeout: *jobTimeout,
			Verify:  *jobVerify,
		}
		if *recoverOut != "" {
			pids, err := parseKillNodes(*killNodes)
			if err != nil {
				return err
			}
			return runRecover(ctx, client, jcfg, pids, *recoverOut, *recoverCE)
		}
		return runJobs(ctx, client, jcfg, *jobKillPID)
	}
	res, err := loadgen.Run(ctx, client, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())

	if *benchOut != "" {
		if err := benchjson.Write(*benchOut, benchjson.FromResult(res)); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d cells)\n", *benchOut, len(res.Cells))
	}

	totals := res.Totals()
	if totals.Unclassified > 0 {
		return fmt.Errorf("%d wrong-answer outcomes (outside corrected/restarted/aborted)", totals.Unclassified)
	}
	if totals.ForbiddenNode > 0 {
		return fmt.Errorf("%d answers delivered by a forbidden node", totals.ForbiddenNode)
	}
	if totals.Errors > 0 {
		return fmt.Errorf("%d transport/internal errors", totals.Errors)
	}
	if totals.Corrected+totals.Restarted+totals.Aborted == 0 {
		return fmt.Errorf("no request completed — server unreachable or fully shedding")
	}
	if *minDone > 0 {
		frac := float64(res.Completed()) / float64(res.Sent())
		if frac < *minDone {
			return fmt.Errorf("only %.1f%% of %d requests completed (gate %.1f%%)",
				100*frac, res.Sent(), 100**minDone)
		}
	}
	return tenantGates(res, minComplete, minShed)
}

// tenantGates applies the per-tenant QoS gates: a protected tenant must
// keep completing its share, and a flooding tenant must actually have been
// throttled or shed — silence on either side fails the run.
func tenantGates(res *loadgen.Result, minComplete, minShed map[string]float64) error {
	totals := res.TenantTotals()
	for name, gate := range minComplete {
		ts, ok := totals[name]
		if !ok || ts.Sent == 0 {
			return fmt.Errorf("tenant %q gate: no requests recorded", name)
		}
		got := float64(ts.Completed) / float64(ts.Sent)
		if got < gate {
			return fmt.Errorf("tenant %q completed %.1f%% of %d requests (gate %.1f%%)",
				name, 100*got, ts.Sent, 100*gate)
		}
	}
	for name, gate := range minShed {
		ts, ok := totals[name]
		if !ok {
			return fmt.Errorf("tenant %q gate: no requests recorded", name)
		}
		if float64(ts.Throttled+ts.Shed) < gate {
			return fmt.Errorf("tenant %q throttled+shed %d (gate >= %.0f)",
				name, ts.Throttled+ts.Shed, gate)
		}
	}
	return nil
}

// parseTenants reads the -tenants spec: "name=priority@rate,...". The
// priority is mandatory; the rate is optional (0 inherits the cell rate).
func parseTenants(spec string) ([]loadgen.TenantSpec, error) {
	var out []loadgen.TenantSpec
	for _, part := range splitList(spec) {
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want name=priority@rate)", part)
		}
		prioName, rateStr, hasRate := strings.Cut(rest, "@")
		prio, err := serve.ParsePriority(prioName, serve.DefaultStrategy)
		if err != nil {
			return nil, err
		}
		spec := loadgen.TenantSpec{Name: name, Priority: prio}
		if hasRate {
			r, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("bad rate in -tenants entry %q", part)
			}
			spec.Rate = r
		}
		out = append(out, spec)
	}
	return out, nil
}

// parseTenantGates reads a "name=value,..." gate spec.
func parseTenantGates(spec string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, part := range splitList(spec) {
		name, valStr, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad gate entry %q (want name=value)", part)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad value in gate entry %q", part)
		}
		out[name] = v
	}
	return out, nil
}

// runJobs is the async-jobs mode: submit -jobs jobs, poll each to a
// terminal state, optionally SIGKILL a worker mid-job, and apply the chaos
// gates — every job done, digests matching, and (with a kill) recovery by
// reconstruction only.
func runJobs(ctx context.Context, client *loadgen.HTTPClient, cfg loadgen.JobsConfig, killPID int) error {
	var killed atomic.Bool
	if killPID > 0 {
		cfg.OnProgress = func(st serve.JobStatus) {
			// Strike at the first poll that shows the job running with
			// blocks outstanding. Dispatch is immediate on run start, so
			// this is mid-flight; waiting for a completed block instead
			// would race the victim on a loaded host — it may finish all
			// its tasks before a starved poller observes the first one.
			if st.State == serve.JobRunning &&
				st.BlocksDone < st.BlocksTotal && killed.CompareAndSwap(false, true) {
				fmt.Printf("job %s: %d/%d blocks done, SIGKILL pid %d\n",
					st.ID, st.BlocksDone, st.BlocksTotal, killPID)
				if err := syscall.Kill(killPID, syscall.SIGKILL); err != nil {
					fmt.Fprintf(os.Stderr, "abftload: kill %d: %v\n", killPID, err)
				}
			}
		}
	}
	rep, err := loadgen.RunJobs(ctx, client, cfg)
	printJobs(rep)
	if err != nil {
		return err
	}
	if err := rep.Gate(); err != nil {
		return err
	}
	if killPID > 0 {
		if !killed.Load() {
			return fmt.Errorf("kill requested but no mid-flight poll observed — job too fast to strike")
		}
		if rep.Reconstructions < 1 {
			return fmt.Errorf("worker killed mid-job but reconstructions=%d, want >= 1", rep.Reconstructions)
		}
	}
	if rep.Recomputes > 0 {
		return fmt.Errorf("recomputes=%d, want 0 (lost blocks must be reconstructed, not re-executed)", rep.Recomputes)
	}
	fmt.Printf("jobs: %d done, %d sharded, %d long, %d reconstructions, %d migrations, 0 recomputes\n",
		rep.Done, rep.Sharded, rep.LongJobs, rep.Reconstructions, rep.Migrations)
	return nil
}

// printJobs renders one line per job, long jobs with their recovery story.
func printJobs(rep loadgen.JobsReport) {
	for _, j := range rep.Jobs {
		st := j.Status
		if st.Long {
			fmt.Printf("job %-8s %-9s n=%-5d node=%-4s step=%-5d checkpoints=%-3d migrations=%d resume_step=%d recovery=%.0fms wall=%.0fms\n",
				st.ID, st.State, st.N, st.Node, st.Step, st.Checkpoints,
				st.Migrations, st.ResumeStep, st.RecoveryMS, j.WallMS)
			continue
		}
		fmt.Printf("job %-8s %-9s n=%-5d sharded=%-5v blocks=%d/%d reconstructions=%d recomputes=%d digest=%s wall=%.0fms\n",
			st.ID, st.State, st.N, st.Sharded, st.BlocksDone, st.BlocksTotal,
			st.Reconstructions, st.Recomputes, st.Digest, j.WallMS)
	}
}

// parseKillNodes reads the -job-kill-nodes spec: "nodeID=pid,nodeID=pid".
func parseKillNodes(spec string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range splitList(spec) {
		id, pidStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -job-kill-nodes entry %q (want node=pid)", part)
		}
		pid, err := strconv.Atoi(pidStr)
		if err != nil || pid <= 0 {
			return nil, fmt.Errorf("bad pid in -job-kill-nodes entry %q", part)
		}
		out[id] = pid
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-recover-out requires -job-kill-nodes node=pid[,node=pid]")
	}
	return out, nil
}

// nodeKiller SIGKILLs the worker executing a long job, but only once the
// gateway has accepted a checkpoint — so the migration has real state to
// resume from and a cold restart would be distinguishable.
type nodeKiller struct {
	pids   map[string]int
	killed atomic.Bool
	victim string
}

func (k *nodeKiller) onProgress(st serve.JobStatus) {
	if st.State != serve.JobRunning || st.Node == "" || st.Checkpoints < 1 || st.Step < 1 {
		return
	}
	pid, ok := k.pids[st.Node]
	if !ok || !k.killed.CompareAndSwap(false, true) {
		return
	}
	k.victim = st.Node
	fmt.Printf("job %s: step %d, %d checkpoints on node %s — SIGKILL pid %d\n",
		st.ID, st.Step, st.Checkpoints, st.Node, pid)
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		fmt.Fprintf(os.Stderr, "abftload: kill %d: %v\n", pid, err)
	}
}

// runRecover is the migrate-vs-cold-restart experiment behind
// BENCH_recover.json: one undisturbed CG solve to price a full restart,
// then the same solve with the executing worker SIGKILLed after its first
// checkpoint. The gates demand a real migration (resume step > 0, one
// migration, converged answer) and a recovery latency strictly below the
// cold wall time — otherwise checkpoint shipping would be theater.
func runRecover(ctx context.Context, client *loadgen.HTTPClient, cfg loadgen.JobsConfig, pids map[string]int, outPath string, checkpointEvery int) error {
	cfg.Jobs = 1
	cfg.Kernel = "cg"
	cfg.Verify = false

	fmt.Printf("recover: cold baseline solve (grid %dx%d, seed %d)\n", cfg.NX, cfg.NY, cfg.Seed)
	coldRep, err := loadgen.RunJobs(ctx, client, cfg)
	printJobs(coldRep)
	if err != nil {
		return err
	}
	if err := coldRep.Gate(); err != nil {
		return fmt.Errorf("cold baseline: %w", err)
	}
	cold := coldRep.Jobs[0]

	killer := &nodeKiller{pids: pids}
	cfg.OnProgress = killer.onProgress
	fmt.Println("recover: chaos solve (SIGKILL after first checkpoint)")
	chaosRep, err := loadgen.RunJobs(ctx, client, cfg)
	printJobs(chaosRep)
	if err != nil {
		return err
	}
	if err := chaosRep.Gate(); err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	st := chaosRep.Jobs[0].Status

	f := benchjson.NewRecoverFile(cfg.Seed)
	f.NX, f.NY, f.CheckpointEvery = cfg.NX, cfg.NY, checkpointEvery
	f.ColdWallMS, f.ColdSteps = cold.WallMS, cold.Status.Step
	f.KillWallMS = chaosRep.Jobs[0].WallMS
	f.ResumeStep, f.Migrations = st.ResumeStep, st.Migrations
	f.RecoveryMS, f.Checkpoints = st.RecoveryMS, st.Checkpoints
	if st.Result != nil {
		f.Outcome = st.Result.Outcome
	}
	if err := benchjson.WriteRecover(outPath, f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (cold %.0fms, recovery %.0fms, resumed from step %d)\n",
		outPath, f.ColdWallMS, f.RecoveryMS, f.ResumeStep)

	if !killer.killed.Load() {
		return fmt.Errorf("no kill landed — job never polled running with a checkpoint on a named node")
	}
	if f.Outcome != "corrected" {
		return fmt.Errorf("chaos outcome %q, want corrected", f.Outcome)
	}
	if f.Migrations < 1 {
		return fmt.Errorf("migrations=%d, want >= 1", f.Migrations)
	}
	if f.ResumeStep <= 0 {
		return fmt.Errorf("resume_step=%d, want > 0 (the replacement started cold)", f.ResumeStep)
	}
	if st.Node == killer.victim {
		return fmt.Errorf("job finished on the killed node %s", st.Node)
	}
	if f.RecoveryMS <= 0 {
		return fmt.Errorf("recovery_ms=%.1f, want > 0", f.RecoveryMS)
	}
	if f.RecoveryMS >= f.ColdWallMS {
		return fmt.Errorf("recovery %.0fms not faster than a cold full restart (%.0fms)", f.RecoveryMS, f.ColdWallMS)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

func parseKind(name string) (bifit.Kind, error) {
	for _, k := range []bifit.Kind{bifit.SingleBit, bifit.DoubleBitSameWord, bifit.ChipFailure, bifit.Scattered} {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q", name)
}
