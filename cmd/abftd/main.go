// Command abftd is the fault-tolerant ABFT compute daemon: every request
// runs an ABFT kernel through the §4 recovery ladder on a fresh simulated
// node configured with the request's ECC strategy, behind a bounded
// admission queue, a small-GEMM batching stage, and a concurrency limit.
//
// Endpoints:
//
//	POST /v1/gemm, /v1/cholesky, /v1/cg   JSON compute requests
//	POST /v1/block                        one block task of a sharded gateway job
//	GET  /healthz                         liveness + queue snapshot
//	GET  /debug/vars                      expvar counters (serve.*)
//	GET  /debug/pprof/...                 profiling
//
// Overload answers 429 (typed, immediate, Retry-After), queue-budget
// expiry 503 — never queue collapse. SIGINT/SIGTERM drain in-flight
// requests and exit 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coopabft/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abftd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8321", "listen address")
		concurrency  = flag.Int("max-concurrency", 2, "simultaneously executing batches")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue depth (default 4x concurrency)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max time a request may wait queued")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "how long to hold a small-GEMM batch open (0 disables batching)")
		maxBatch     = flag.Int("max-batch", 8, "max requests per execution batch")
		maxN         = flag.Int("max-n", 192, "largest accepted gemm/cholesky dimension")
		maxJobN      = flag.Int("max-job-n", 2048, "largest accepted sharded-job dimension on /v1/block")
		blockConc    = flag.Int("block-concurrency", 0, "simultaneously executing block tasks (default max-concurrency)")
		parallelism  = flag.Int("parallelism", 1, "mat worker count per kernel (throughput comes from request concurrency)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		byzLie       = flag.Float64("byzantine-lie", 0, "chaos fixture: fraction of integrity-tier requests this node answers with a well-formed wrong answer (0 disables)")
		byzSeed      = flag.Uint64("byzantine-seed", 0, "seed for the lying lottery (pure function of it and the request seed)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant admission token rate in req/s (0 disables tenant quotas)")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant token bucket capacity (default 2x tenant-rate)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := &serve.Metrics{}
	m.Publish()
	svc := serve.New(serve.Config{
		MaxConcurrency:   *concurrency,
		QueueDepth:       *queueDepth,
		QueueTimeout:     *queueTimeout,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		MaxN:             *maxN,
		MaxJobN:          *maxJobN,
		BlockConcurrency: *blockConc,
		Parallelism:      *parallelism,
		LieFraction:      *byzLie,
		LieSeed:          *byzSeed,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		Metrics:          m,
	})
	if *byzLie > 0 {
		log.Printf("abftd: BYZANTINE CHAOS FIXTURE ACTIVE: lying on %.0f%% of integrity-tier requests", *byzLie*100)
	}

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(svc))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("abftd: serving on http://%s (concurrency %d, queue %s)",
		ln.Addr(), *concurrency, *queueTimeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight handlers classify
	// their requests (the service is still live underneath them), then
	// close the service.
	log.Printf("abftd: signal received, draining (budget %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	svc.Close()
	log.Printf("abftd: drained, exiting")
	return nil
}
