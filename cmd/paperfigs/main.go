// Command paperfigs regenerates every table and figure of the paper's
// evaluation section (§5) and prints them as text tables.
//
// Usage:
//
//	paperfigs [-small] [-only fig5,fig8,...] [-format text|json]
//	          [-parallel N] [-seed S] [-progress]
//
// Experiments are dispatched by name through the experiments registry:
// table3 fig3 table1 table4 fig5 fig6 fig7 headlines table5 fig8 fig9
// fig10, plus three extensions: "cases" (Monte-Carlo §4 case frequencies
// on the real codecs), "capability" (per-kernel multi-error repair rates)
// and "threshold" (empirical ARE-vs-ASE crossover, the measured
// counterpart of Equation 7). The default runs everything. -small uses the
// fast test-scale problem sizes instead of the paper-ratio-preserving
// defaults.
//
// Independent simulation cells fan out across -parallel workers (default:
// all cores) through the campaign engine; per-cell seeding keeps the
// output bit-identical to a -parallel 1 run. -progress renders a live
// cells/sec + utilization line on stderr, and Ctrl-C cancels the campaign
// promptly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"coopabft/internal/campaign"
	"coopabft/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "use fast test-scale problem sizes")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	format := flag.String("format", "text", "output format: text or json")
	parallel := flag.Int("parallel", 0, "campaign engine workers (0 = all cores)")
	seed := flag.Uint64("seed", 42, "campaign seed every cell seed derives from")
	progress := flag.Bool("progress", false, "live per-experiment progress on stderr")
	flag.Parse()

	baseOpts := []experiments.Option{}
	if *small {
		baseOpts = append(baseOpts, experiments.WithSmall())
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
	if seedSet {
		baseOpts = append(baseOpts, experiments.WithSeed(*seed))
	}
	baseOpts = append(baseOpts, experiments.WithWorkers(*parallel))

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(s))] = true
		}
	}
	for name := range want {
		if _, err := experiments.Lookup(name); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(2)
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	jsonOut := map[string]any{}
	for _, name := range experiments.Names() {
		if !sel(name) {
			continue
		}
		exp, err := experiments.Lookup(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(2)
		}
		opts := baseOpts
		if *progress {
			opts = append(opts[:len(opts):len(opts)],
				experiments.WithProgress(campaign.StderrProgress(os.Stderr, name, 200*time.Millisecond)))
		}
		res, err := exp.Run(ctx, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(1)
		}
		if *format == "json" {
			jsonOut[name] = res.Data
		} else {
			res.Render(os.Stdout)
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(1)
		}
	}
}
