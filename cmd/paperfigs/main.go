// Command paperfigs regenerates every table and figure of the paper's
// evaluation section (§5) and prints them as text tables.
//
// Usage:
//
//	paperfigs [-small] [-only fig5,fig8,...]
//
// Experiments: table1 table3 table4 table5 fig3 fig5 fig6 fig7 fig8 fig9
// fig10, plus three extensions: "cases" (Monte-Carlo §4 case frequencies on
// the real codecs), "capability" (per-kernel multi-error repair rates) and
// "threshold" (empirical ARE-vs-ASE crossover, the measured counterpart of
// Equation 7). The default runs everything. -small
// uses the fast test-scale problem sizes instead of the paper-ratio-
// preserving defaults.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"coopabft/internal/ecc"
	"coopabft/internal/experiments"
	"coopabft/internal/resilience"
)

func main() {
	small := flag.Bool("small", false, "use fast test-scale problem sizes")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	format := flag.String("format", "text", "output format: text or json")
	flag.Parse()

	o := experiments.Default()
	if *small {
		o = experiments.Small()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(s))] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	w := os.Stdout

	if *format == "json" {
		emitJSON(w, o, sel)
		return
	}

	if sel("table3") {
		experiments.RenderTable3(w, o)
	}
	if sel("fig3") {
		experiments.RenderFig3(w, experiments.Fig3(o))
	}
	if sel("table1") {
		experiments.RenderTable1(w, experiments.Table1(o))
	}
	if sel("table4") || sel("fig5") || sel("fig6") || sel("fig7") {
		rows := experiments.Fig567(o)
		if sel("table4") {
			experiments.RenderTable4(w, experiments.Table4(o))
		}
		if sel("fig5") {
			experiments.RenderFig5(w, rows)
		}
		if sel("fig6") {
			experiments.RenderFig6(w, rows)
		}
		if sel("fig7") {
			experiments.RenderFig7(w, rows)
		}
		if sel("fig5") || sel("fig6") {
			h := experiments.Headlines(o)
			fmt.Fprintf(w, "\n-- §5.1 headline comparisons --\n")
			fmt.Fprintf(w, "FT-CG memory-energy increase under whole chipkill: %.0f%% (paper: 68%%)\n",
				100*h.CGWholeChipkillMemIncrease)
			fmt.Fprintf(w, "Whole-SECDED average memory-energy increase: %.0f%% (paper: ~12%%)\n",
				100*h.WholeSECDEDAvgMemIncrease)
			for _, k := range experiments.AllKernels {
				fmt.Fprintf(w, "%-12s partial-vs-whole chipkill: memory −%.0f%%, system −%.0f%%\n",
					k, 100*h.PartialVsWholeChipkillSaving[k], 100*h.SystemSavingPartialChipkill[k])
			}
		}
	}
	if sel("table5") {
		experiments.RenderTable5(w)
	}
	if sel("fig8") {
		experiments.RenderScaling(w, "Figure 8: weak scaling (energy benefit vs ABFT recovery cost)",
			experiments.Fig8(o))
	}
	if sel("fig9") {
		experiments.RenderScaling(w, "Figure 9: strong scaling (energy benefit vs ABFT recovery cost)",
			experiments.Fig9(o))
	}
	if sel("fig10") {
		experiments.RenderFig10(w, experiments.Fig10(o))
	}
	// Extensions beyond the paper's figures (see EXPERIMENTS.md).
	if sel("cases") {
		for _, s := range []ecc.Scheme{ecc.SECDED, ecc.Chipkill} {
			resilience.Render(w, resilience.ClassifyCases(s, 20000, int64(o.Seed)))
		}
	}
	if sel("capability") {
		var curves [][]resilience.CapabilityPoint
		counts := []int{1, 2, 4, 8}
		for _, k := range resilience.CapabilityKernels {
			curves = append(curves, resilience.CapabilityCurve(k, 24, counts, 20, int64(o.Seed)))
		}
		resilience.RenderCapability(w, curves)
	}
	if sel("threshold") {
		experiments.RenderThreshold(w,
			experiments.ThresholdStudy(o, []int{0, 4, 16, 64, 256, 1024}))
	}
}

// emitJSON writes the selected experiments as one machine-readable object.
func emitJSON(w io.Writer, o experiments.Options, sel func(string) bool) {
	out := map[string]any{}
	if sel("fig3") {
		out["fig3"] = experiments.Fig3(o)
	}
	if sel("table1") {
		out["table1"] = experiments.Table1(o)
	}
	if sel("table4") {
		out["table4"] = experiments.Table4(o)
	}
	if sel("fig5") || sel("fig6") || sel("fig7") {
		out["fig567"] = experiments.Fig567(o)
		out["headlines"] = experiments.Headlines(o)
	}
	if sel("fig8") {
		out["fig8"] = experiments.Fig8(o)
	}
	if sel("fig9") {
		out["fig9"] = experiments.Fig9(o)
	}
	if sel("fig10") {
		out["fig10"] = experiments.Fig10(o)
	}
	if sel("cases") {
		out["cases"] = map[string]any{
			"secded":   resilience.ClassifyCases(ecc.SECDED, 20000, int64(o.Seed)),
			"chipkill": resilience.ClassifyCases(ecc.Chipkill, 20000, int64(o.Seed)),
		}
	}
	if sel("capability") {
		var curves [][]resilience.CapabilityPoint
		for _, k := range resilience.CapabilityKernels {
			curves = append(curves, resilience.CapabilityCurve(k, 24, []int{1, 2, 4, 8}, 20, int64(o.Seed)))
		}
		out["capability"] = curves
	}
	if sel("threshold") {
		out["threshold"] = experiments.ThresholdStudy(o, []int{0, 4, 16, 64, 256, 1024})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
}
