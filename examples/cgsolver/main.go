// CG solver: solving a 2D Poisson problem with FT-CG while errors rain on
// the solver state.
//
// The example runs the fault-tolerant preconditioned conjugate gradient of
// §2.1 on a 128×128 five-point stencil, injecting corruption into a
// different vector every few iterations. The invariant checks (Equations 1)
// detect the damage and the solver recovers in place, still converging to
// the true solution — the "fail-continue without checkpointing" property.
//
//	go run ./examples/cgsolver
package main

import (
	"fmt"
	"log"
	"math"

	"coopabft/internal/abft"
)

func main() {
	env := abft.Standalone()
	cg := abft.NewCG(env, 128, 128, 7)
	cg.CheckPeriod = 5
	cg.RelTol = 1e-10

	// An adversarial fault campaign: hit a different structure each time.
	injections := 0
	cg.OnIteration = func(iter int) {
		switch iter {
		case 20:
			cg.R()[1000] += 1e8
			injections++
			fmt.Printf("iter %3d: corrupted residual r[1000]\n", iter)
		case 60:
			cg.X()[5000] -= 4e6
			injections++
			fmt.Printf("iter %3d: corrupted solution x[5000]\n", iter)
		case 100:
			cg.P()[123] *= -1e5
			injections++
			fmt.Printf("iter %3d: corrupted search direction p[123]\n", iter)
		}
	}

	out, err := cg.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged: %v after %d iterations (recursive residual %.3g)\n",
		out.Converged, out.Iterations, out.Residual)
	fmt.Printf("injections: %d, invariant-triggered recoveries: %d\n", injections, cg.Recoveries)

	trueRes := cg.TrueResidual()
	fmt.Printf("true residual ‖b − A·x‖ = %.3g\n", trueRes)
	if !out.Converged || math.IsNaN(trueRes) || trueRes > 1e-6 {
		log.Fatal("solver did not survive the fault campaign")
	}
	fmt.Println("solution verified despite three mid-solve corruptions ✓")

	// Contrast: the same campaign with verification disabled diverges from
	// the true solution even though the recursive residual looks converged.
	naive := abft.NewCG(abft.Standalone(), 128, 128, 7)
	naive.CheckPeriod = 0
	naive.RelTol = 1e-10
	naive.OnIteration = func(iter int) {
		if iter == 60 {
			naive.X()[5000] -= 4e6
		}
	}
	nOut, err := naive.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout ABFT: reported residual %.3g but TRUE residual %.3g — silently wrong\n",
		nOut.Residual, naive.TrueResidual())
}
