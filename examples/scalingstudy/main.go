// Scaling study: when is relaxing ECC under ABFT worth it at scale?
//
// The example reproduces the §5.2 analysis pipeline at example scale:
// measure per-process energy under partial and whole ECC on the simulator,
// extrapolate to large process counts with the §4 fault models, and compare
// the aggregate energy benefit of relaxed ECC against the cost of ABFT
// recoveries for the errors that slip past the weaker protection.
//
//	go run ./examples/scalingstudy
package main

import (
	"fmt"
	"log"

	"coopabft/internal/core"
	"coopabft/internal/faultmodel"
	"coopabft/internal/scaling"
)

func main() {
	cfg := scaling.DefaultConfig()
	cfg.GridX, cfg.GridY = 64, 64
	cfg.Iterations = 16

	fmt.Println("Weak scaling: FT-CG, one 64×64-grid solve per process")
	fmt.Printf("%-14s%-12s%18s%16s%12s\n", "strategy", "processes", "energy benefit(J)", "recovery(J)", "errors")
	procs := []int{100, 12800, 819200}
	for _, s := range scaling.PartialStrategies {
		pts, err := scaling.WeakScaling(cfg, s, procs)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("%-14s%-12d%18.4g%16.4g%12.3g\n",
				s, p.Processes, p.EnergyBenefitJ, p.RecoveryCostJ, p.ExpectedErrors)
		}
	}

	fmt.Println("\nStrong scaling from a 100-process base:")
	fmt.Printf("%-14s%-12s%18s%16s\n", "strategy", "processes", "energy benefit(J)", "recovery(J)")
	sprocs := []int{100, 400, 1600}
	for _, s := range scaling.PartialStrategies {
		pts, err := scaling.StrongScaling(cfg, s, 100, sprocs)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pts {
			fmt.Printf("%-14s%-12d%18.4g%16.4g\n", s, p.Processes, p.EnergyBenefitJ, p.RecoveryCostJ)
		}
	}

	// The §4 decision rule: at what MTTF does ARE stop paying off?
	fmt.Println("\nEquation 7/8 thresholds (example parameters):")
	m, err := scaling.MeasureCG(cfg, core.PartialChipkillNoECC, false)
	if err != nil {
		log.Fatal(err)
	}
	base, err := scaling.MeasureCG(cfg, core.WholeChipkill, false)
	if err != nil {
		log.Fatal(err)
	}
	tauARE := 0.0
	tauASE := base.Seconds/m.Seconds - 1
	rj, err := scaling.RecoveryEnergy(cfg, core.PartialChipkillNoECC)
	if err != nil {
		log.Fatal(err)
	}
	tc := rj / 100 // J→s proxy at 100 W
	thr := faultmodel.MTTFThresholdPerf(tc, tauASE, tauARE)
	fmt.Printf("τ_ase=%.3f (measured), t_c≈%.3gs → MTTF threshold %.3g s\n", tauASE, tc, thr)
	nodeMTTF := faultmodel.MTTF(5000, m.ABFTBytes*8/1e6, 1, 1)
	fmt.Printf("per-process no-ECC MTTF at this footprint: %.3g s — %.0fx above threshold, ARE wins\n",
		nodeMTTF, nodeMTTF/thr)
}
