// Coordination: the full ARE (ABFT + relaxed ECC) loop of §3 on the
// simulated node.
//
// The example allocates FT-Cholesky's matrix with malloc_ecc under relaxed
// SECDED while the rest of the node keeps chipkill, injects an
// ECC-uncorrectable error, and shows the cooperative pipeline: the memory
// controller detects it on a fetch, records the fault site in its error
// registers, interrupts the OS, the OS derives the virtual address and
// exposes it to the application, and ABFT rebuilds exactly that element —
// no checksum sweep, no checkpoint, no restart.
//
//	go run ./examples/coordination
package main

import (
	"fmt"
	"log"

	"coopabft/internal/abft"
	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/machine"
)

func main() {
	rt := core.NewRuntime(machine.ScaledConfig(32), core.PartialChipkillSECDED, 99)
	fmt.Printf("node: default ECC %v, ABFT data under %v\n",
		rt.Strategy.DefaultScheme(), rt.Strategy.ABFTScheme())

	chol := rt.NewCholesky(96, 5)
	chol.Mode = abft.NotifiedVerify
	if err := chol.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored a 96×96 SPD matrix; MC ECC regions programmed: %d\n",
		len(rt.M.Ctl.Regions()))

	// Error strikes DRAM: a whole-chip (8-bit symbol) failure in L —
	// correctable by chipkill, but this data runs relaxed SECDED.
	rt.M.FlushCaches()
	tgt := bifit.Target{Data: chol.A.Data, Reg: chol.A.Reg}
	idx := 60*chol.A.Stride + 20
	before := chol.A.At(60, 20)
	// A whole x4 chip's contribution goes bad: all 8 bits of one symbol
	// (bits 48–55, high mantissa). Chipkill would correct this; SECDED
	// cannot — which is the point of the cooperative pipeline.
	if err := rt.Injector.FlipBits(tgt, idx, []int{48, 49, 50, 51, 52, 53, 54, 55}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchip failure injected: L[60][20] = %.6f → %.6f\n", before, chol.A.At(60, 20))

	// The kernel touches the line again (any later read does this).
	rt.M.Memory().Touch(chol.A.Addr(60, 20), 8, false)
	pend := rt.M.OS.PeekCorruptions()
	fmt.Printf("MC: uncorrectable under SECDED → interrupt; OS exposed %d corrupted line(s)\n", len(pend))

	// ABFT's simplified verification reads the shared list and repairs.
	if err := chol.VerifyNotified(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ABFT repaired from the dual column checksums: L[60][20] = %.6f\n", chol.A.At(60, 20))
	if d := chol.A.At(60, 20) - before; d < 1e-6 && d > -1e-6 {
		fmt.Println("value restored exactly ✓")
	}

	res := rt.Finish()
	fmt.Printf("\nplatform: %d interrupt(s), %d exposure(s) to ABFT, %d panic(s)\n",
		res.Interrupts, res.OS.ExposedToABFT, res.OS.Panics)
	fmt.Printf("energy: system %.4g J (memory %.4g J of which dynamic %.4g J)\n",
		res.SystemEnergyJ, res.MemEnergyJ(), res.MemDynamicJ)
	fmt.Printf("residual faulty lines in DRAM: %d\n", rt.M.Ctl.FaultyLines())
}
