// Quickstart: fault-tolerant matrix multiplication in a few lines.
//
// FT-DGEMM encodes A and B with checksums, multiplies, and can then detect
// and correct corrupted result elements without recomputing the product —
// the core ABFT idea of §2.1.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"coopabft/internal/abft"
)

func main() {
	// Standalone environment: pure algorithm, no hardware simulation.
	env := abft.Standalone()
	d, err := abft.NewDGEMM(env, 64, 42)
	if err != nil {
		log.Fatal(err)
	}

	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplied two 64×64 matrices with checksum protection\n")
	fmt.Printf("overhead: %.1f%% of arithmetic (%.0f%% of that is verification)\n",
		100*d.Ops.OverheadFraction(), 100*d.Ops.VerifyShareOfOverhead())

	// A cosmic ray strikes the result matrix...
	want := d.Cf.At(7, 11)
	d.Cf.Set(7, 11, want*3+1)
	fmt.Printf("\ncorrupted C[7][11]: %.6f → %.6f\n", want, d.Cf.At(7, 11))

	// ...and the checksum verification finds and repairs it.
	if err := d.VerifyFull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after ABFT verification: C[7][11] = %.6f\n", d.Cf.At(7, 11))
	for _, c := range d.Corrections {
		fmt.Printf("correction log: %s[%d][%d] adjusted by %.6f\n", c.Structure, c.I, c.J, c.Delta)
	}

	if err := d.CheckResult(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("result verified against a fresh reference multiplication ✓")
}
