// Adaptive: end-to-end resilience steering, the paper's closing direction.
//
// The example runs ABFT data under relaxed ECC while the node is healthy,
// then simulates a DIMM going bad (a burst of uncorrectable errors). The
// adaptive policy watches the observed error rate, compares the implied
// MTTF with the Equation (7) threshold, and escalates the ABFT data to
// strong ECC via assign_ecc; when the storm passes it relaxes again.
// Meanwhile the OS retires the repeatedly-failing page.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"coopabft/internal/bifit"
	"coopabft/internal/core"
	"coopabft/internal/ecc"
	"coopabft/internal/machine"
	"coopabft/internal/osmodel"
)

func main() {
	rt := core.NewRuntime(machine.ScaledConfig(32), core.PartialChipkillSECDED, 21)
	d, err := rt.NewDGEMM(48, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	alloc, _ := rt.M.OS.AllocationAt(d.Cf.Reg.Base)

	cfg := core.DefaultAdaptiveConfig()
	cfg.Relaxed, cfg.Strong = ecc.SECDED, ecc.Chipkill
	pol := core.NewAdaptivePolicy(cfg, rt.M.OS, []*osmodel.Allocation{alloc})
	fmt.Printf("policy: MTTF threshold (Eq. 7) = %.2f s; window %.0f s\n",
		pol.Threshold(), cfg.WindowSeconds)

	scheme := func() ecc.Scheme {
		pa, _ := rt.M.OS.Translate(d.Cf.Reg.Base)
		return rt.M.Ctl.SchemeFor(pa)
	}
	fmt.Printf("healthy node: ABFT data under %v\n", scheme())

	// Window 1: clean.
	pol.Observe(rt.M.OS.Stats().Interrupts)
	fmt.Printf("window 1 (clean): mode strong=%v, scheme %v\n", pol.StrongMode(), scheme())

	// Window 2: a DIMM starts dying — uncorrectable errors on one page.
	rt.M.FlushCaches()
	tgt := bifit.Target{Data: d.Cf.Data, Reg: d.Cf.Reg}
	for i := 0; i < 4; i++ {
		idx := (i + 1) * d.Cf.Stride
		if err := rt.Injector.FlipBits(tgt, idx, []int{5, 23}); err != nil {
			log.Fatal(err)
		}
		rt.M.Memory().Touch(d.Cf.Reg.Base+uint64(idx)*8, 8, false)
	}
	st := rt.M.OS.Stats()
	fmt.Printf("window 2 (storm): %d uncorrectable errors, %d page(s) retired by the OS\n",
		st.Interrupts, st.PagesRetired)
	pol.Observe(st.Interrupts)
	fmt.Printf("→ policy escalated: mode strong=%v, scheme %v\n", pol.StrongMode(), scheme())

	// ABFT repairs the exposed corruption while protection is strong.
	if err := d.VerifyNotified(); err != nil {
		log.Fatal(err)
	}
	if err := d.CheckResult(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("→ ABFT repaired all exposed corruption; result verified")

	// Windows 3–4: quiet again → relax.
	pol.Observe(rt.M.OS.Stats().Interrupts)
	pol.Observe(rt.M.OS.Stats().Interrupts)
	fmt.Printf("windows 3–4 (quiet): mode strong=%v, scheme %v, %d switches total\n",
		pol.StrongMode(), scheme(), pol.Switches)
}
