package coopabft

// Ablation benchmarks for the modeling decisions DESIGN.md §4 calls out:
// each one toggles a single model term and reports how much of the headline
// effect that term carries. Run with:
//
//	go test -bench=Ablation -benchtime=1x
//
// plus directional regression tests that pin the sign of each effect.

import (
	"testing"

	"coopabft/internal/abft"
	"coopabft/internal/core"
	"coopabft/internal/machine"
)

// cgUnder runs a fixed FT-CG workload on a machine configured by mutate.
func cgUnder(tb testing.TB, s core.Strategy, seed uint64, mutate func(*machine.Config)) machine.Result {
	tb.Helper()
	cfg := machine.ScaledConfig(32)
	if mutate != nil {
		mutate(&cfg)
	}
	rt := core.NewRuntime(cfg, s, int64(seed))
	cg := rt.NewCG(48, 48, seed)
	cg.MaxIter = 12
	cg.RelTol = 0
	cg.CheckPeriod = 4
	if _, err := cg.Run(); err != nil {
		tb.Fatal(err)
	}
	return rt.Finish()
}

// BenchmarkAblationChipkillTerms decomposes the whole-chipkill penalty into
// its two model terms: chip-activation overfetch (36 vs 18 chips) and
// channel lock-step (partner ganging + forced prefetch).
func BenchmarkAblationChipkillTerms(b *testing.B) {
	var full, noLock, noOver, neither machine.Result
	for i := 0; i < b.N; i++ {
		seed := uint64(100 + i)
		full = cgUnder(b, core.WholeChipkill, seed, nil)
		noLock = cgUnder(b, core.WholeChipkill, seed, func(c *machine.Config) { c.DRAM.DisableLockstep = true })
		noOver = cgUnder(b, core.WholeChipkill, seed, func(c *machine.Config) { c.DRAM.DisableChipOverfetch = true })
		neither = cgUnder(b, core.WholeChipkill, seed, func(c *machine.Config) {
			c.DRAM.DisableLockstep = true
			c.DRAM.DisableChipOverfetch = true
		})
	}
	base := neither.MemDynamicJ
	b.ReportMetric(full.MemDynamicJ/base, "full/ablated-energy-x")
	b.ReportMetric(noLock.MemDynamicJ/base, "overfetch-only-energy-x")
	b.ReportMetric(noOver.MemDynamicJ/base, "lockstep-only-energy-x")
	b.ReportMetric(neither.IPC/full.IPC, "ablated/full-IPC-x")
}

// BenchmarkAblationRowBufferPolicy quantifies the open-page row-buffer
// filter — the effect behind the §5.1 observation that measured savings are
// smaller than footprint ratios predict.
func BenchmarkAblationRowBufferPolicy(b *testing.B) {
	var open, closed machine.Result
	for i := 0; i < b.N; i++ {
		seed := uint64(200 + i)
		open = cgUnder(b, core.WholeChipkill, seed, nil)
		closed = cgUnder(b, core.WholeChipkill, seed, func(c *machine.Config) { c.DRAM.ClosedPagePolicy = true })
	}
	b.ReportMetric(closed.MemDynamicJ/open.MemDynamicJ, "closed/open-energy-x")
	b.ReportMetric(open.RowHitRate, "open-rowhit-rate")
	b.ReportMetric(closed.IPC/open.IPC, "closed/open-IPC-x")
}

// BenchmarkAblationMSHRDepth sweeps the outstanding-miss window that sets
// how much memory latency the core can hide.
func BenchmarkAblationMSHRDepth(b *testing.B) {
	depths := []int{1, 2, 4, 8, 16}
	results := make([]machine.Result, len(depths))
	for i := 0; i < b.N; i++ {
		for d, depth := range depths {
			depth := depth
			results[d] = cgUnder(b, core.NoECC, uint64(300+i), func(c *machine.Config) { c.CPU.MSHRs = depth })
		}
	}
	for d, depth := range depths {
		b.ReportMetric(results[d].IPC, "IPC@mshr"+itoa(depth))
	}
}

// BenchmarkAblationCheckPeriod sweeps FT-DGEMM's verification period: the
// overhead the cooperative approach removes grows as checks become more
// frequent.
func BenchmarkAblationCheckPeriod(b *testing.B) {
	periods := []int{1, 2, 4}
	ovh := make([]float64, len(periods))
	for i := 0; i < b.N; i++ {
		for p, period := range periods {
			d, err := abft.NewDGEMM(abft.Standalone(), 96, uint64(400+i))
			if err != nil {
				b.Fatal(err)
			}
			d.CheckPeriod = period
			if err := d.Run(); err != nil {
				b.Fatal(err)
			}
			ovh[p] = d.Ops.OverheadFraction()
		}
	}
	for p, period := range periods {
		b.ReportMetric(100*ovh[p], "overhead-%@period"+itoa(period))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Directional regression tests for the ablation terms ---

func TestAblationChipkillTermsDirection(t *testing.T) {
	full := cgUnder(t, core.WholeChipkill, 7, nil)
	noLock := cgUnder(t, core.WholeChipkill, 7, func(c *machine.Config) { c.DRAM.DisableLockstep = true })
	noOver := cgUnder(t, core.WholeChipkill, 7, func(c *machine.Config) { c.DRAM.DisableChipOverfetch = true })
	// The two terms carry different costs: chip overfetch is the energy
	// term, lock-step is the parallelism (performance) term. Removing
	// lock-step barely moves energy (the lost companion prefetch even costs
	// a few extra activations) but frees the partner channel.
	if noOver.MemDynamicJ >= full.MemDynamicJ*0.6 {
		t.Errorf("removing overfetch should halve dynamic energy: %g vs %g",
			noOver.MemDynamicJ, full.MemDynamicJ)
	}
	if noLock.IPC <= full.IPC {
		t.Errorf("removing lock-step did not improve IPC: %v vs %v", noLock.IPC, full.IPC)
	}
	if d := noLock.MemDynamicJ/full.MemDynamicJ - 1; d > 0.1 || d < -0.1 {
		t.Errorf("lock-step removal moved energy by %.1f%%, expected ≈0", 100*d)
	}
}

func TestAblationClosedPageDirection(t *testing.T) {
	open := cgUnder(t, core.WholeChipkill, 9, nil)
	closed := cgUnder(t, core.WholeChipkill, 9, func(c *machine.Config) { c.DRAM.ClosedPagePolicy = true })
	if closed.MemDynamicJ <= open.MemDynamicJ {
		t.Errorf("closed page did not raise energy: %g vs %g", closed.MemDynamicJ, open.MemDynamicJ)
	}
	if closed.RowHitRate != 0 {
		t.Errorf("closed page row-hit rate = %v", closed.RowHitRate)
	}
	if open.RowHitRate <= 0.5 {
		t.Errorf("open-page hit rate %v suspiciously low for streaming CG", open.RowHitRate)
	}
}

func TestAblationMSHRDirection(t *testing.T) {
	one := cgUnder(t, core.NoECC, 11, func(c *machine.Config) { c.CPU.MSHRs = 1 })
	eight := cgUnder(t, core.NoECC, 11, func(c *machine.Config) { c.CPU.MSHRs = 8 })
	if one.IPC >= eight.IPC {
		t.Errorf("more MSHRs did not help: IPC %v vs %v", one.IPC, eight.IPC)
	}
}

func TestAblationCheckPeriodDirection(t *testing.T) {
	frequent, err := abft.NewDGEMM(abft.Standalone(), 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	frequent.CheckPeriod = 1
	if err := frequent.Run(); err != nil {
		t.Fatal(err)
	}
	rare, err := abft.NewDGEMM(abft.Standalone(), 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	rare.CheckPeriod = 4
	if err := rare.Run(); err != nil {
		t.Fatal(err)
	}
	if frequent.Ops.Verify <= rare.Ops.Verify {
		t.Errorf("more frequent checks did not cost more: %d vs %d",
			frequent.Ops.Verify, rare.Ops.Verify)
	}
}
