// Package coopabft is a from-scratch Go reproduction of "Rethinking
// Algorithm-Based Fault Tolerance with a Cooperative Software-Hardware
// Approach" (Li, Chen, Wu, Vetter — SC 2013): six ABFT kernels (FT-DGEMM,
// FT-Cholesky, FT-CG, FT-HPL, plus FT-LU and FT-QR from the paper's related
// work), real SECDED and chipkill ECC codecs, a cache/DRAM/memory-controller
// simulator with software-programmable per-region ECC, the OS support
// (malloc_ecc/free_ecc/assign_ecc, the ECC-error interrupt path, page
// retirement), fault injection, the §4 fault models, checkpoint/restart,
// an adaptive ECC policy, and a harness regenerating every table and figure
// of the paper's evaluation plus three extension studies.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each experiment; the
// cmd/paperfigs binary prints them as tables.
package coopabft
