#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# -short trims the Monte-Carlo trial budgets so the race run stays within
# a small-machine time budget; the plain `go test ./...` tier-1 gate runs
# the full budgets.
set -eux

cd "$(dirname "$0")"

gofmt_dirty=$(gofmt -l .)
test -z "$gofmt_dirty"

go vet ./...
go build ./...
go test -race -short ./...

# Chaos soak gate: the seeded short grid (24 fault-injected runs through
# the §4 recovery ladder, deterministic outcome table) under the race
# detector, time-boxed so a hung run fails fast instead of stalling CI.
go test -race -timeout 5m -run 'TestSoakShortDeterministic' ./internal/recovery/soak/

# Bench smoke: compile and run every benchmark once so the GFLOP/s suite
# (kernel layer, tables/figures) can't silently rot.
go test -bench=. -benchtime=1x -run='^$' ./...

# Serving smoke gate: build abftd + abftload under the race detector,
# start the daemon on loopback, drive a seeded fault-injected burst
# through it, and assert zero wrong answers (abftload exits nonzero on
# any outcome outside corrected/restarted/aborted), typed rejections
# only, BENCH_serve.json emission, and a clean SIGINT drain.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -race -o "$tmp/abftd" ./cmd/abftd
go build -race -o "$tmp/abftload" ./cmd/abftload
"$tmp/abftd" -addr 127.0.0.1:18321 &
abftd_pid=$!
"$tmp/abftload" -addr http://127.0.0.1:18321 -wait 10s \
	-rates 40 -kernels gemm,cholesky -strategies "w_ck,p_ck+p_sd" \
	-duration 2s -n 48 -fault-fraction 0.25 -fault-kind chip-failure \
	-seed 7 -bench-out "$tmp/BENCH_serve.json"
test -s "$tmp/BENCH_serve.json"
kill -INT "$abftd_pid"
wait "$abftd_pid"

# Cluster smoke gate: three abftd workers behind abftgate, a seeded
# fault-injected sweep driven through the gateway, and one worker
# SIGKILLed mid-sweep. The gate requires zero wrong answers (abftload's
# taxonomy check), at least 95% of sent requests completed (the gateway's
# failover absorbed the kill), and a clean SIGINT drain of the gateway
# and the surviving workers.
go build -race -o "$tmp/abftgate" ./cmd/abftgate
"$tmp/abftd" -addr 127.0.0.1:18431 &
n1=$!
"$tmp/abftd" -addr 127.0.0.1:18432 &
n2=$!
"$tmp/abftd" -addr 127.0.0.1:18433 &
n3=$!
"$tmp/abftgate" -addr 127.0.0.1:18430 \
	-nodes "http://127.0.0.1:18431,http://127.0.0.1:18432,http://127.0.0.1:18433" \
	-probe-interval 150ms -breaker-cooldown 500ms -seed 11 &
gate=$!
"$tmp/abftload" -addr http://127.0.0.1:18430 -wait 10s \
	-rates 30 -kernels gemm,cholesky -strategies "w_ck,p_ck+p_sd" \
	-duration 4s -n 48 -fault-fraction 0.25 -fault-kind chip-failure \
	-seed 11 -retry-429 2 -min-complete 0.95 &
load=$!
sleep 6
kill -KILL "$n2"
wait "$load"
kill -INT "$gate"
wait "$gate"
kill -INT "$n1" "$n3"
wait "$n1"
wait "$n3"
wait "$n2" || true
