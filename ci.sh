#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# -short trims the Monte-Carlo trial budgets so the race run stays within
# a small-machine time budget; the plain `go test ./...` tier-1 gate runs
# the full budgets.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race -short ./...

# Bench smoke: compile and run every benchmark once so the GFLOP/s suite
# (kernel layer, tables/figures) can't silently rot.
go test -bench=. -benchtime=1x -run='^$' ./...
