#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# -short trims the Monte-Carlo trial budgets so the race run stays within
# a small-machine time budget; the plain `go test ./...` tier-1 gate runs
# the full budgets.
set -eux

cd "$(dirname "$0")"

gofmt_dirty=$(gofmt -l .)
test -z "$gofmt_dirty"

go vet ./...
go build ./...
go test -race -short ./...

# Chaos soak gate: the seeded short grid (24 fault-injected runs through
# the §4 recovery ladder, deterministic outcome table) under the race
# detector, time-boxed so a hung run fails fast instead of stalling CI.
go test -race -timeout 5m -run 'TestSoakShortDeterministic' ./internal/recovery/soak/

# Bench smoke: compile and run every benchmark once so the GFLOP/s suite
# (kernel layer, tables/figures) can't silently rot.
go test -bench=. -benchtime=1x -run='^$' ./...

# Fused-kernel bench gate: a short wall-clock comparison of two-pass
# (FullVerify) vs fused (FusedVerify) DGEMM under fault injection. The
# test fails if the fused faulted GFLOP/s regresses below the two-pass
# faulted GFLOP/s — the perf contract behind the fused verify mode. The
# committed BENCH_fused.json baseline is the same test at n=1024. n=256 is
# the smallest size where the contract structurally holds: below it the
# whole product is cache-resident and the two-pass sweep's memory-traffic
# penalty (the cost fused detection avoids) vanishes.
FUSED_BENCH=1 FUSED_BENCH_N=256 go test -timeout 10m \
	-run 'TestFusedVsTwoPassGate' -v ./internal/abft/

# Mixed-precision f32 ABFT gates: the variance-adaptive threshold must
# detect every injected fault above its bound (no silent wrong answers)
# and never fire on clean runs across adversarial magnitude/shape
# distributions (no false-positive restarts).
go test -race -timeout 5m \
	-run 'TestGEMM32CleanSweepNoFalsePositives|TestGEMM32FaultAboveBoundAlwaysDetected|TestGEMM32BitFlipNeverSilent' \
	./internal/abft/

# Serving smoke gate: build abftd + abftload under the race detector,
# start the daemon on loopback, drive a seeded fault-injected burst
# through it, and assert zero wrong answers (abftload exits nonzero on
# any outcome outside corrected/restarted/aborted), typed rejections
# only, BENCH_serve.json emission, and a clean SIGINT drain.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -race -o "$tmp/abftd" ./cmd/abftd
go build -race -o "$tmp/abftload" ./cmd/abftload
"$tmp/abftd" -addr 127.0.0.1:18321 &
abftd_pid=$!
"$tmp/abftload" -addr http://127.0.0.1:18321 -wait 10s \
	-rates 40 -kernels gemm,cholesky -strategies "w_ck,p_ck+p_sd" \
	-verify-modes notified,fused -dtypes f64,f32 \
	-duration 2s -n 48 -fault-fraction 0.25 -fault-kind chip-failure \
	-seed 7 -bench-out "$tmp/BENCH_serve.json"
test -s "$tmp/BENCH_serve.json"
# The fused sweep axis must have produced gemm cells in the baseline,
# including the mixed-precision f32 fused cell.
grep -q '"verify_mode": "fused"' "$tmp/BENCH_serve.json"
grep -q '"dtype": "f32"' "$tmp/BENCH_serve.json"
kill -INT "$abftd_pid"
wait "$abftd_pid"

# QoS chaos gate: one race-built daemon with per-tenant quotas (20 req/s,
# burst 10), a protected tenant inside its quota against a speculative
# flood at 5x the bucket rate, with fault injection still on. The run
# fails unless the protected tenant completed >= 95% of what it sent, the
# flood saw at least one typed throttle/shed rejection, and — abftload's
# standing taxonomy gate — zero answers fell outside
# corrected/restarted/aborted.
"$tmp/abftd" -addr 127.0.0.1:18471 -tenant-rate 20 -tenant-burst 10 &
qos_pid=$!
"$tmp/abftload" -addr http://127.0.0.1:18471 -wait 10s \
	-rates 25 -kernels gemm -duration 3s -n 48 \
	-fault-fraction 0.25 -fault-kind chip-failure -seed 29 \
	-tenants "gold=protected@10,flood=speculative@100" \
	-tenant-min-complete "gold=0.95" -tenant-min-shed "flood=1"
kill -INT "$qos_pid"
wait "$qos_pid"

# Cluster smoke gate: three abftd workers behind abftgate, a seeded
# fault-injected sweep driven through the gateway, and one worker
# SIGKILLed mid-sweep. The gate requires zero wrong answers (abftload's
# taxonomy check), at least 95% of sent requests completed (the gateway's
# failover absorbed the kill), and a clean SIGINT drain of the gateway
# and the surviving workers.
go build -race -o "$tmp/abftgate" ./cmd/abftgate
"$tmp/abftd" -addr 127.0.0.1:18431 &
n1=$!
"$tmp/abftd" -addr 127.0.0.1:18432 &
n2=$!
"$tmp/abftd" -addr 127.0.0.1:18433 &
n3=$!
"$tmp/abftgate" -addr 127.0.0.1:18430 \
	-nodes "http://127.0.0.1:18431,http://127.0.0.1:18432,http://127.0.0.1:18433" \
	-probe-interval 150ms -breaker-cooldown 500ms -seed 11 &
gate=$!
"$tmp/abftload" -addr http://127.0.0.1:18430 -wait 10s \
	-rates 30 -kernels gemm,cholesky -strategies "w_ck,p_ck+p_sd" \
	-duration 4s -n 48 -fault-fraction 0.25 -fault-kind chip-failure \
	-seed 11 -retry-429 2 -min-complete 0.95 &
load=$!
sleep 6
kill -KILL "$n2"
wait "$load"
kill -INT "$gate"
wait "$gate"
kill -INT "$n1" "$n3"
wait "$n1"
wait "$n3"
wait "$n2" || true

# Kill-mid-job chaos gate: three workers behind the gateway with sharding
# on, one large GEMM job submitted through the async jobs API, and one
# worker SIGKILLed at the first poll showing the job running with blocks
# outstanding. The gate requires the job to finish done with the
# bit-exact reference digest (-job-verify recomputes the product
# client-side), recovery purely by checksum-block reconstruction
# (reconstructions >= 1), and zero block recomputation (abftload exits
# nonzero on recomputes > 0).
#
# The victim is the third worker: the shard plan is deterministic for a
# fixed job seed and node order, and under seed 13 the third node holds
# the 2x2 grid's data-only slot — two data blocks in different grid
# columns, serialized by -block-concurrency 1 — so an early strike
# always leaves at least one data block to reconstruct (a victim owning
# completed blocks plus only checksum blocks would recover with
# reconstructions=0, which this gate must distinguish from a recompute).
# Striking at the first running poll, not after a completed block, keeps
# the race window closed on loaded hosts: a starved poller that waits
# for "1 done" can observe it only after the victim already finished
# everything it owned.
"$tmp/abftd" -addr 127.0.0.1:18441 -block-concurrency 1 &
j1=$!
"$tmp/abftd" -addr 127.0.0.1:18442 -block-concurrency 1 &
j2=$!
"$tmp/abftd" -addr 127.0.0.1:18443 -block-concurrency 1 &
j3=$!
"$tmp/abftgate" -addr 127.0.0.1:18440 \
	-nodes "http://127.0.0.1:18441,http://127.0.0.1:18442,http://127.0.0.1:18443" \
	-shard-threshold 64 -shard-block 256 \
	-probe-interval 150ms -breaker-cooldown 500ms -seed 13 &
jgate=$!
"$tmp/abftload" -addr http://127.0.0.1:18440 -wait 10s \
	-jobs 1 -job-n 512 -job-verify -job-timeout 120s -seed 13 \
	-job-kill-pid "$j3"

# Cross-check the same invariants from the gateway's own counters
# (expvar renders compact JSON): reconstructions >= 1, block_recomputes
# == 0.
vars=$(curl -s http://127.0.0.1:18440/debug/vars)
echo "$vars" | grep -q '"block_recomputes":0'
if echo "$vars" | grep -q '"reconstructions":0'; then
	echo "gateway metrics report zero reconstructions" >&2
	exit 1
fi

kill -INT "$jgate"
wait "$jgate"
kill -INT "$j1" "$j2"
wait "$j1"
wait "$j2"
wait "$j3" || true

# SIGKILL-mid-CG chaos gate: two workers behind the gateway with tight
# checkpoint streaming, and abftload's migrate-vs-cold-restart experiment
# (-recover-out). abftload first runs an undisturbed CG long job to price
# a full restart, then re-runs the same solve and SIGKILLs whichever
# worker is executing it once the gateway has accepted a checkpoint. It
# exits nonzero unless the job migrated (migrations >= 1), resumed from a
# step > 0 (a cold restart on the replacement is a failure), converged
# corrected (zero wrong answers), and the gateway-measured fault-to-
# resumed latency beat the cold baseline's wall time — the comparison is
# written to BENCH_recover.json. -self-url is what workers dial to stream
# checkpoints back, so it must be the gateway's loopback address.
"$tmp/abftd" -addr 127.0.0.1:18451 &
c1=$!
"$tmp/abftd" -addr 127.0.0.1:18452 &
c2=$!
"$tmp/abftgate" -addr 127.0.0.1:18450 \
	-nodes "http://127.0.0.1:18451,http://127.0.0.1:18452" \
	-self-url http://127.0.0.1:18450 -checkpoint-every 2 \
	-probe-interval 150ms -breaker-cooldown 500ms -seed 17 &
cgate=$!
"$tmp/abftload" -addr http://127.0.0.1:18450 -wait 10s \
	-job-kernel cg -job-nx 64 -job-ny 64 -job-timeout 120s -seed 17 \
	-job-kill-nodes "127.0.0.1:18451=$c1,127.0.0.1:18452=$c2" \
	-recover-checkpoint-every 2 -recover-out "$tmp/BENCH_recover.json"
test -s "$tmp/BENCH_recover.json"
grep -q '"bench": "recover"' "$tmp/BENCH_recover.json"
grep -q '"outcome": "corrected"' "$tmp/BENCH_recover.json"

# Cross-check from the gateway's own counters: at least one migration and
# one stored checkpoint, a push-detected node death, and no job the
# cluster lost.
cvars=$(curl -s http://127.0.0.1:18450/debug/vars)
if echo "$cvars" | grep -q '"migrations":0[,}]'; then
	echo "gateway metrics report zero migrations" >&2
	exit 1
fi
if echo "$cvars" | grep -q '"checkpoints_stored":0[,}]'; then
	echo "gateway metrics report zero stored checkpoints" >&2
	exit 1
fi
echo "$cvars" | grep -q '"jobs_failed":0[,}]'

kill -INT "$cgate"
wait "$cgate"
# One worker was SIGKILLed by abftload; drain whichever survived.
kill -INT "$c1" 2>/dev/null || true
kill -INT "$c2" 2>/dev/null || true
wait "$c1" || true
wait "$c2" || true

# Lying-node vote gate: three workers behind the gateway, the third one
# Byzantine (-byzantine-lie 1.0: every integrity-tier answer is a
# well-formed, internally consistent, WRONG product). A 64-request seeded
# integrity=vote sweep must deliver zero answers from the liar
# (-forbid-node makes abftload exit nonzero on any), reach quorum on every
# election (two honest replicas outvote one liar, so quorum_fail stays 0
# even while the liar's breaker cycles), and charge the liar's suspect
# tally until its breaker trips on lost elections alone — the Byzantine
# signal transport-level breakers cannot see.
"$tmp/abftd" -addr 127.0.0.1:18461 &
v1=$!
"$tmp/abftd" -addr 127.0.0.1:18462 &
v2=$!
"$tmp/abftd" -addr 127.0.0.1:18463 -byzantine-lie 1.0 -byzantine-seed 99 &
v3=$!
"$tmp/abftgate" -addr 127.0.0.1:18460 \
	-nodes "http://127.0.0.1:18461,http://127.0.0.1:18462,http://127.0.0.1:18463" \
	-vote-replicas 3 -suspect-trip 3 \
	-probe-interval 150ms -breaker-cooldown 500ms -seed 19 &
vgate=$!
"$tmp/abftload" -addr http://127.0.0.1:18460 -wait 10s \
	-kernels gemm -integrity vote -requests 64 -rates 40 -n 48 \
	-seed 19 -retry-429 2 -forbid-node 127.0.0.1:18463

# Cross-check from the gateway's own counters: elections happened, every
# one reached quorum, and the liar (and only the liar) accumulated
# suspects and a suspect-trip. The global suspect_trips key collides with
# the per-node one under grep, so the per-node assertions go through jq.
vvars=$(curl -s http://127.0.0.1:18460/debug/vars)
echo "$vvars" | grep -q '"quorum_fail":0[,}]'
if echo "$vvars" | grep -q '"votes_total":0[,}]'; then
	echo "gateway metrics report zero vote elections" >&2
	exit 1
fi
if echo "$vvars" | grep -q '"suspects_total":0[,}]'; then
	echo "gateway metrics report zero suspects" >&2
	exit 1
fi
test "$(echo "$vvars" | jq '.cluster.nodes["127.0.0.1:18463"].suspects')" -ge 3
test "$(echo "$vvars" | jq '.cluster.nodes["127.0.0.1:18463"].suspect_trips')" -ge 1
test "$(echo "$vvars" | jq '.cluster.nodes["127.0.0.1:18461"].suspects')" -eq 0
test "$(echo "$vvars" | jq '.cluster.nodes["127.0.0.1:18462"].suspects')" -eq 0

# Verify-vote phase against the same pool: the DCRFT-style mode must bank
# cheap O(n^2) verification passes (verify_vote_cheap_hits > 0) and still
# never deliver the liar's product — elections where the liar is primary
# end in a typed abort, which abftload counts as a classified outcome.
"$tmp/abftload" -addr http://127.0.0.1:18460 -wait 10s \
	-kernels gemm -integrity verify-vote -requests 32 -rates 40 -n 48 \
	-seed 23 -retry-429 2 -forbid-node 127.0.0.1:18463
wvars=$(curl -s http://127.0.0.1:18460/debug/vars)
if echo "$wvars" | grep -q '"verify_vote_cheap_hits":0[,}]'; then
	echo "gateway metrics report zero cheap verification hits" >&2
	exit 1
fi

kill -INT "$vgate"
wait "$vgate"
kill -INT "$v1" "$v2" "$v3"
wait "$v1"
wait "$v2"
wait "$v3"
