#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# -short trims the Monte-Carlo trial budgets so the race run stays within
# a small-machine time budget; the plain `go test ./...` tier-1 gate runs
# the full budgets.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race -short ./...

# Chaos soak gate: the seeded short grid (24 fault-injected runs through
# the §4 recovery ladder, deterministic outcome table) under the race
# detector, time-boxed so a hung run fails fast instead of stalling CI.
go test -race -timeout 5m -run 'TestSoakShortDeterministic' ./internal/recovery/soak/

# Bench smoke: compile and run every benchmark once so the GFLOP/s suite
# (kernel layer, tables/figures) can't silently rot.
go test -bench=. -benchtime=1x -run='^$' ./...
