module coopabft

go 1.22
