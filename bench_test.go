package coopabft

// One benchmark per table and figure of the paper's evaluation (§5). Each
// iteration regenerates the experiment from scratch (the per-iteration seed
// defeats the harness cache) and reports the headline quantity the paper
// quotes as a custom metric, so `go test -bench=.` both times the
// reproduction pipeline and prints the reproduced numbers.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"coopabft/internal/abft"
	"coopabft/internal/campaign"
	"coopabft/internal/core"
	"coopabft/internal/ecc"
	"coopabft/internal/experiments"
	"coopabft/internal/resilience"
	"coopabft/internal/scaling"
	"coopabft/internal/serve"
)

// benchOptions returns small-scale options with a per-benchmark,
// per-iteration seed so the harness result cache cannot short-circuit the
// work being measured.
func benchOptions(base, i int) experiments.Options {
	o := experiments.Small()
	o.Seed = uint64(base + i)
	return o
}

// BenchmarkFig3OverheadBreakdown regenerates the ABFT overhead split
// (checksum vs verification) for the three fail-continue kernels.
func BenchmarkFig3OverheadBreakdown(b *testing.B) {
	var last []experiments.OverheadBreakdown
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig3Ctx(context.Background(), benchOptions(1000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range last {
		b.ReportMetric(100*r.VerifyFraction, r.Kernel.String()+"-verify-%ovh")
	}
}

// BenchmarkTable1SimplifiedVerification regenerates the notified-verification
// speedups (paper: 8.6% / 6.0% / 12.2%).
func BenchmarkTable1SimplifiedVerification(b *testing.B) {
	var last []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Table1Ctx(context.Background(), benchOptions(2000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range last {
		b.ReportMetric(r.ImprovementPct, r.Kernel.String()+"-improv-%")
	}
}

// BenchmarkTable4AccessClassification regenerates the LLC-miss
// classification ratios (paper: 654 / 14 / 3 / 20).
func BenchmarkTable4AccessClassification(b *testing.B) {
	var last []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Table4Ctx(context.Background(), benchOptions(3000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range last {
		b.ReportMetric(r.Ratio, r.Kernel.String()+"-ratio")
	}
}

// BenchmarkFig5MemoryEnergy regenerates the six-strategy memory-energy
// sweep; the reported metric is FT-CG's whole-chipkill increase (paper: 68%).
func BenchmarkFig5MemoryEnergy(b *testing.B) {
	var h experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = experiments.HeadlinesCtx(context.Background(), benchOptions(4000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*h.CGWholeChipkillMemIncrease, "CG-WCK-mem-increase-%")
	b.ReportMetric(100*h.PartialVsWholeChipkillSaving[experiments.KDGEMM], "DGEMM-partial-saving-%")
	b.ReportMetric(100*h.WholeSECDEDAvgMemIncrease, "WSD-avg-increase-%")
}

// BenchmarkFig6SystemEnergy reports the partial-chipkill system-energy
// savings (paper: up to 22/8/25/10% for DGEMM/Cholesky/CG/HPL).
func BenchmarkFig6SystemEnergy(b *testing.B) {
	var h experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = experiments.HeadlinesCtx(context.Background(), benchOptions(5000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range experiments.AllKernels {
		b.ReportMetric(100*h.SystemSavingPartialChipkill[k], k.String()+"-sys-saving-%")
	}
}

// BenchmarkFig7Performance reports IPC under whole chipkill relative to
// No_ECC for the memory-intensive kernel.
func BenchmarkFig7Performance(b *testing.B) {
	var rows []experiments.StrategyMetrics
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig567Ctx(context.Background(), benchOptions(6000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Kernel == experiments.KCG && r.Strategy == core.WholeChipkill {
			b.ReportMetric(r.IPCNorm, "CG-WCK-IPC-ratio")
		}
		if r.Kernel == experiments.KCG && r.Strategy == core.PartialChipkillNoECC {
			b.ReportMetric(r.IPCNorm, "CG-PCK-IPC-ratio")
		}
	}
}

// BenchmarkFig8WeakScaling regenerates the weak-scaling energy-benefit vs
// recovery-cost curves and reports the benefit:cost ratio at the largest
// scale (the paper's headline: benefit ≫ recovery cost).
func BenchmarkFig8WeakScaling(b *testing.B) {
	var series []experiments.ScalingSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig8Ctx(context.Background(), benchOptions(7000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		last := s.Points[len(s.Points)-1]
		if last.RecoveryCostJ > 0 {
			b.ReportMetric(last.EnergyBenefitJ/last.RecoveryCostJ, s.Strategy.String()+"-benefit:cost")
		}
	}
}

// BenchmarkFig9StrongScaling regenerates the mixed strong-scaling study and
// reports how much the recovery cost falls from the base to the largest
// scale (the paper: recovery becomes cheaper as per-process problems
// shrink).
func BenchmarkFig9StrongScaling(b *testing.B) {
	var series []experiments.ScalingSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig9Ctx(context.Background(), benchOptions(8000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.RecoveryCostJ > 0 {
			b.ReportMetric(first.RecoveryCostJ/last.RecoveryCostJ, s.Strategy.String()+"-recovery-drop-x")
		}
	}
}

// BenchmarkFig10DGMS regenerates the DGMS comparison and reports the
// cooperative approach's memory-energy advantage (paper: 49% for FT-DGEMM,
// 24% for FT-CG).
func BenchmarkFig10DGMS(b *testing.B) {
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig10Ctx(context.Background(), benchOptions(9000, i))
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(k experiments.KernelID, mech string) experiments.Fig10Row {
		for _, r := range rows {
			if r.Kernel == k && r.Mechanism == mech {
				return r
			}
		}
		return experiments.Fig10Row{}
	}
	for _, k := range []experiments.KernelID{experiments.KDGEMM, experiments.KCG} {
		dg := get(k, "DGMS")
		ours := get(k, "ARE(P_CK+P_SD)")
		if dg.MemNorm > 0 {
			b.ReportMetric(100*(1-ours.MemNorm/dg.MemNorm), k.String()+"-vs-DGMS-mem-saving-%")
		}
	}
}

// --- Kernel microbenchmarks: the substrate costs behind the experiments ---

// BenchmarkKernelDGEMM times one uninstrumented FT-DGEMM run.
func BenchmarkKernelDGEMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := abft.NewDGEMM(abft.Standalone(), 96, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelCholesky times one uninstrumented FT-Cholesky run.
func BenchmarkKernelCholesky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := abft.NewCholesky(abft.Standalone(), 96, uint64(i))
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelCG times one uninstrumented FT-CG solve.
func BenchmarkKernelCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := abft.NewCG(abft.Standalone(), 48, 48, uint64(i))
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelHPL times one uninstrumented FT-HPL factorization.
func BenchmarkKernelHPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := abft.NewHPL(abft.Standalone(), 64, 4, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedNodeCG times the full machine simulation of one FT-CG
// run — the cost of the McSim/DRAMSim2 substitute itself.
func BenchmarkSimulatedNodeCG(b *testing.B) {
	cfg := scaling.DefaultConfig()
	cfg.GridX, cfg.GridY = 32, 32
	cfg.Iterations = 8
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := scaling.MeasureCG(cfg, core.PartialChipkillSECDED, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Campaign engine: serial vs parallel fan-out of the same sweep ---

// benchSweep runs the 24-cell kernel×strategy sweep behind fig5/6/7 with
// the given worker count. The seed base must differ per benchmark: the
// harness cache deliberately ignores Workers (equal seeds give equal
// results at any width), so reusing a base would time cache hits.
func benchSweep(b *testing.B, base, workers int) {
	for i := 0; i < b.N; i++ {
		o := benchOptions(base, i)
		o.Workers = workers
		if _, err := experiments.BasicCtx(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBasicSweepSerial pins the campaign engine to one worker.
func BenchmarkBasicSweepSerial(b *testing.B) { benchSweep(b, 10000, 1) }

// BenchmarkBasicSweepParallel lets the campaign engine use every core; on
// a multi-core host the ratio to the serial benchmark is the engine's
// speedup (the per-cell seeding keeps the results bit-identical either
// way).
func BenchmarkBasicSweepParallel(b *testing.B) { benchSweep(b, 11000, 0) }

// BenchmarkResilienceCampaignParallel times the Monte-Carlo codec campaign
// through the engine at full width.
func BenchmarkResilienceCampaignParallel(b *testing.B) {
	eng := campaign.New()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.RunCampaignCtx(context.Background(),
			ecc.Chipkill, resilience.Burst64, 2000, int64(i), eng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving subsystem: request path through the recovery ladder ---

// benchServe drives b.N requests through an in-process service at the
// given client width, reporting end-to-end request latency (queue +
// ladder execution). Seeds vary per request so the problem data is
// regenerated every iteration.
func benchServe(b *testing.B, cfg serve.Config, clients int, req serve.Request) {
	b.Helper()
	svc := serve.New(cfg)
	defer svc.Close()
	var seed atomic.Uint64
	seed.Store(uint64(b.N) << 20)
	b.ResetTimer()
	b.SetParallelism(clients)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := req
			r.Seed = seed.Add(1)
			resp, err := svc.Do(context.Background(), r)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Outcome == "" {
				b.Fatal("unclassified response")
			}
		}
	})
}

// BenchmarkServeGEMM measures the quiet-path serving rate: concurrent
// fault-free small GEMMs, no batching.
func BenchmarkServeGEMM(b *testing.B) {
	benchServe(b, serve.Config{MaxConcurrency: 4, QueueDepth: 256, QueueTimeout: time.Minute},
		4, serve.Request{Kernel: "gemm", N: 48})
}

// BenchmarkServeGEMMBatched holds a small batching window open; the
// delta against BenchmarkServeGEMM prices the coalescing stage.
func BenchmarkServeGEMMBatched(b *testing.B) {
	benchServe(b, serve.Config{MaxConcurrency: 4, QueueDepth: 256, QueueTimeout: time.Minute,
		BatchWindow: time.Millisecond, MaxBatch: 8},
		4, serve.Request{Kernel: "gemm", N: 48})
}

// BenchmarkServeGEMMFaulted measures the ladder-exercising path: every
// request injects a chip failure that ABFT or ECC must absorb.
func BenchmarkServeGEMMFaulted(b *testing.B) {
	benchServe(b, serve.Config{MaxConcurrency: 4, QueueDepth: 256, QueueTimeout: time.Minute},
		4, serve.Request{Kernel: "gemm", N: 48, Strategy: "P_CK+P_SD",
			Faults: 1, FaultKind: "chip-failure"})
}
